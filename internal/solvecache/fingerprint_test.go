package solvecache

import (
	"testing"

	"socbuf/internal/ctmdp"
)

// testClients returns a small heterogeneous client set.
func testClients() []ctmdp.Client {
	return []ctmdp.Client{
		{BufferID: "a", Lambda: 1.5, Levels: 2, UnitsPerLevel: 3, LossWeight: 1, DownstreamFullProb: 0.1},
		{BufferID: "b", Lambda: 0.7, Levels: 2, UnitsPerLevel: 5, LossWeight: 2, DownstreamFullProb: 0},
		{BufferID: "c", Lambda: 2.2, Levels: 1, UnitsPerLevel: 4, LossWeight: 1, DownstreamFullProb: 0},
	}
}

func mustModel(t *testing.T, bus string, rate float64, clients []ctmdp.Client) *ctmdp.Model {
	t.Helper()
	m, err := ctmdp.NewModel(bus, rate, clients)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFingerprintPermutationInvariant(t *testing.T) {
	cs := testClients()
	m1 := mustModel(t, "bus1", 4, cs)
	perm := []ctmdp.Client{cs[2], cs[0], cs[1]}
	m2 := mustModel(t, "bus1", 4, perm)
	var opts SolveOptions
	if Fingerprint(m1, opts) != Fingerprint(m2, opts) {
		t.Error("permuted-client-order models must share a full fingerprint")
	}
	if StructuralFingerprint(m1, opts) != StructuralFingerprint(m2, opts) {
		t.Error("permuted-client-order models must share a structural fingerprint")
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	cs := testClients()
	m1 := mustModel(t, "busA", 4, cs)
	renamed := testClients()
	for i := range renamed {
		renamed[i].BufferID = "other" + renamed[i].BufferID
	}
	// Aggregate membership is solve-irrelevant bookkeeping too.
	renamed[0].Members = []string{"x", "y"}
	renamed[0].MemberLambda = []float64{1.0, 0.5}
	m2 := mustModel(t, "busB", 4, renamed)
	var opts SolveOptions
	if Fingerprint(m1, opts) != Fingerprint(m2, opts) {
		t.Error("bus name, buffer IDs and membership must not affect the fingerprint")
	}
}

func TestFingerprintCapacityChange(t *testing.T) {
	cs := testClients()
	m1 := mustModel(t, "bus1", 4, cs)
	resized := testClients()
	resized[1].UnitsPerLevel = 9
	m2 := mustModel(t, "bus1", 4, resized)
	var opts SolveOptions
	if Fingerprint(m1, opts) == Fingerprint(m2, opts) {
		t.Error("changed capacity must change the full fingerprint")
	}
	if StructuralFingerprint(m1, opts) != StructuralFingerprint(m2, opts) {
		t.Error("changed capacity must NOT change the structural fingerprint")
	}
}

func TestFingerprintStructuralChange(t *testing.T) {
	cs := testClients()
	m1 := mustModel(t, "bus1", 4, cs)
	var opts SolveOptions
	for name, mutate := range map[string]func(*ctmdp.Client){
		"lambda":     func(c *ctmdp.Client) { c.Lambda += 0.25 },
		"levels":     func(c *ctmdp.Client) { c.Levels++ },
		"lossWeight": func(c *ctmdp.Client) { c.LossWeight *= 2 },
		"downstream": func(c *ctmdp.Client) { c.DownstreamFullProb = 0.5 },
	} {
		changed := testClients()
		mutate(&changed[0])
		m2 := mustModel(t, "bus1", 4, changed)
		if Fingerprint(m1, opts) == Fingerprint(m2, opts) {
			t.Errorf("%s change must alter the full fingerprint", name)
		}
		if StructuralFingerprint(m1, opts) == StructuralFingerprint(m2, opts) {
			t.Errorf("%s change must alter the structural fingerprint", name)
		}
	}
	m3 := mustModel(t, "bus1", 5, testClients())
	if StructuralFingerprint(m1, opts) == StructuralFingerprint(m3, opts) {
		t.Error("service-rate change must alter the structural fingerprint")
	}
}

func TestFingerprintOptions(t *testing.T) {
	m := mustModel(t, "bus1", 4, testClients())
	base := Fingerprint(m, SolveOptions{})
	refined := Fingerprint(m, SolveOptions{Refine: true})
	if base == refined {
		t.Error("refinement flag must be part of the fingerprint")
	}
	tuned := Fingerprint(m, SolveOptions{Refine: true, Stationary: ctmdp.StationaryOptions{Tol: 1e-10}})
	if refined == tuned {
		t.Error("stationary tolerance must be part of the fingerprint")
	}
	// A warm-start prior is a hint, never identity.
	warmed := Fingerprint(m, SolveOptions{Refine: true, Stationary: ctmdp.StationaryOptions{Warm: []float64{1, 0}}})
	if refined != warmed {
		t.Error("warm-start priors must NOT be part of the fingerprint")
	}
}

func TestJointFingerprint(t *testing.T) {
	m1 := mustModel(t, "bus1", 4, testClients())
	m2 := mustModel(t, "bus2", 6, testClients()[:2])
	var opts SolveOptions
	k1 := JointFingerprint([]*ctmdp.Model{m1, m2}, 10, opts)
	if k2 := JointFingerprint([]*ctmdp.Model{m1, m2}, 12, opts); k1 == k2 {
		t.Error("occupancy cap must be part of the joint fingerprint")
	}
	if k3 := JointFingerprint([]*ctmdp.Model{m2, m1}, 10, opts); k1 == k3 {
		t.Error("block order fixes the joint program layout and must be keyed")
	}
}
