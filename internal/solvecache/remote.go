package solvecache

import (
	"encoding/json"
	"fmt"

	"socbuf/internal/ctmdp"
)

// This file is the cache side of the shared remote tier: how local tiers
// consult an attached Store on a local miss, and how freshly computed
// payloads are written behind. The serialisation contract (DESIGN.md §10):
//
//   - A remote payload is a pure function of its key, exactly like a local
//     entry: the bytes any peer stores under a key are bit-identical to the
//     bytes every other peer would store, so adopting a remote payload can
//     never change a result — only skip a recompute.
//   - Payloads are JSON envelopes tagged with their tier. Keys are already
//     version- and backend-tagged (a peer on another fingerprint version
//     computes disjoint keys), and the HTTP layer additionally version-tags
//     every response; the tier tag inside the envelope is the final guard
//     against a store wired across incompatible fleets.
//   - Decoding validates every dimension against the reconstructed model
//     before the payload is adopted; an undecodable or inconsistent payload
//     is a miss, never an error — a poisoned peer can cost recomputes, not
//     correctness.
//   - Exact-tier payloads carry the canonical model and solution but NOT the
//     LP basis: a basis is a warm-start hint, not part of the answer, and
//     excluding it keeps hostile-payload validation trivial. A remote exact
//     hit therefore seeds capped re-solves slightly less well than a local
//     one — a deliberate trade.

// remoteEnvelope wraps every sidecar payload.
type remoteEnvelope struct {
	Tier string          `json:"tier"`
	Data json.RawMessage `json:"data"`
}

// exactPayload is the wire form of one exact-tier entry: the canonical
// model's reconstruction inputs plus the solution aligned to it.
type exactPayload struct {
	ServiceRate float64        `json:"serviceRate"`
	Clients     []ctmdp.Client `json:"clients"`
	X           []float64      `json:"x"`
	StateProb   []float64      `json:"stateProb"`
	LossRate    float64        `json:"lossRate"`
	ActionProb  [][]float64    `json:"actionProb"`
	Visited     []bool         `json:"visited"`
	Iters       int            `json:"iters"`
}

// encodeRemote wraps tier-tagged data in the envelope.
func encodeRemote(tier string, data any) ([]byte, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return nil, err
	}
	return json.Marshal(remoteEnvelope{Tier: tier, Data: raw})
}

// decodeRemote unwraps an envelope, checking the tier tag.
func decodeRemote(b []byte, tier string, into any) error {
	var env remoteEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return err
	}
	if env.Tier != tier {
		return fmt.Errorf("solvecache: remote payload tier %q, want %q", env.Tier, tier)
	}
	return json.Unmarshal(env.Data, into)
}

// encodeEntry serialises one exact-tier entry for the remote store.
func encodeEntry(e *entry) ([]byte, error) {
	return encodeRemote("exact", exactPayload{
		ServiceRate: e.model.ServiceRate,
		Clients:     e.model.Clients,
		X:           e.sol.X,
		StateProb:   e.sol.StateProb,
		LossRate:    e.sol.LossRate,
		ActionProb:  e.sol.Policy.ActionProb,
		Visited:     e.sol.Policy.Visited,
		Iters:       e.iters,
	})
}

// decodeEntry reconstructs an exact-tier entry from remote bytes, validating
// every dimension against the rebuilt canonical model. Any inconsistency
// returns an error (the caller treats it as a miss).
func decodeEntry(b []byte) (*entry, error) {
	var p exactPayload
	if err := decodeRemote(b, "exact", &p); err != nil {
		return nil, err
	}
	m, err := ctmdp.NewModel("sub", p.ServiceRate, p.Clients)
	if err != nil {
		return nil, fmt.Errorf("solvecache: remote exact payload: %w", err)
	}
	n := m.NumStates()
	if len(p.X) != m.NumVars() || len(p.StateProb) != n || len(p.ActionProb) != n || len(p.Visited) != n {
		return nil, fmt.Errorf("solvecache: remote exact payload dimensions do not match model")
	}
	for _, row := range p.ActionProb {
		if len(row) != len(p.Clients) {
			return nil, fmt.Errorf("solvecache: remote exact payload policy row width mismatch")
		}
	}
	sol := &ctmdp.ModelSolution{
		Model:     m,
		X:         p.X,
		StateProb: p.StateProb,
		LossRate:  p.LossRate,
		Policy: &ctmdp.Policy{
			Model:      m,
			ActionProb: p.ActionProb,
			Visited:    p.Visited,
		},
	}
	return &entry{model: m, sol: sol, iters: p.Iters}, nil
}

// SetRemote attaches (or, with nil, detaches) the shared remote store. Local
// tiers consult it on local misses and write freshly computed payloads
// behind it. Attach before solving; swapping mid-flight is not synchronised.
// A nil receiver is a no-op.
func (c *Cache) SetRemote(s Store) {
	if c == nil {
		return
	}
	c.remote = s
}

// Remote returns the attached store (nil when none).
func (c *Cache) Remote() Store {
	if c == nil {
		return nil
	}
	return c.remote
}

// remoteGet consults the attached store for one tier-tagged payload,
// decoding into `into`. Misses and undecodable payloads both report false;
// only adopted payloads count as remote hits.
func (c *Cache) remoteGet(k Key, tier string, into any) bool {
	if c.remote == nil {
		return false
	}
	b, ok := c.remote.Get(nil, k)
	if !ok {
		c.remoteMis.Add(1)
		return false
	}
	if err := decodeRemote(b, tier, into); err != nil {
		c.remoteMis.Add(1)
		return false
	}
	c.remoteHit.Add(1)
	return true
}

// remotePutData writes one tier-tagged payload behind the attached store.
func (c *Cache) remotePutData(k Key, tier string, data any) {
	if c.remote == nil {
		return
	}
	b, err := encodeRemote(tier, data)
	if err != nil {
		return
	}
	c.remote.Put(nil, k, b)
}

// remoteEntryGet is remoteGet for the exact tier (entries need model
// reconstruction and dimension validation, not plain JSON decoding).
func (c *Cache) remoteEntryGet(k Key) *entry {
	if c.remote == nil {
		return nil
	}
	b, ok := c.remote.Get(nil, k)
	if !ok {
		c.remoteMis.Add(1)
		return nil
	}
	e, err := decodeEntry(b)
	if err != nil {
		c.remoteMis.Add(1)
		return nil
	}
	c.remoteHit.Add(1)
	return e
}

// remoteEntryPut writes one exact-tier entry behind the attached store.
func (c *Cache) remoteEntryPut(k Key, e *entry) {
	if c.remote == nil {
		return
	}
	b, err := encodeEntry(e)
	if err != nil {
		return
	}
	c.remote.Put(nil, k, b)
}
