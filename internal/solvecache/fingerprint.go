package solvecache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"socbuf/internal/ctmdp"
)

// Key is a content-addressed fingerprint of a solve's inputs. Two solves with
// equal keys are the same mathematical problem and share one cached solution.
type Key [sha256.Size]byte

// String renders the key as hex (for logs and stats tables).
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// SolveOptions is the part of a ctmdp.JointConfig that changes what a
// per-model solution IS (and therefore belongs in the fingerprint), as
// opposed to how models are grouped into programs. See DESIGN.md §4 for the
// full cache-key contract.
type SolveOptions struct {
	// Refine mirrors ctmdp.JointConfig.RefineStationary: refined and
	// unrefined solutions are different payloads.
	Refine bool
	// Stationary's Method/Tol/MaxIters and auto-path thresholds are
	// fingerprinted (they change which solver produced the payload); its
	// Warm prior is NOT (a warm start cannot change the converged answer).
	Stationary ctmdp.StationaryOptions
}

// optionsOf extracts the fingerprinted options from a joint config.
func optionsOf(cfg ctmdp.JointConfig) SolveOptions {
	return SolveOptions{Refine: cfg.RefineStationary, Stationary: cfg.Stationary}
}

// clientKey is the canonical per-client tuple. The structural part —
// everything the occupation-measure LP and the policy-induced chain depend
// on — comes first; UnitsPerLevel (the capacity quantum) affects only
// occupancy-derived quantities, which is exactly the warm-start axis.
type clientKey struct {
	lambda, lossWeight, downstreamFullProb float64
	levels                                 int
	unitsPerLevel                          float64
}

func keyOf(c ctmdp.Client) clientKey {
	return clientKey{
		lambda:             c.Lambda,
		lossWeight:         c.LossWeight,
		downstreamFullProb: c.DownstreamFullProb,
		levels:             c.Levels,
		unitsPerLevel:      c.UnitsPerLevel,
	}
}

// structuralLess orders clients by the solve-relevant tuple only.
func structuralLess(a, b clientKey) bool {
	switch {
	case a.lambda != b.lambda:
		return a.lambda < b.lambda
	case a.levels != b.levels:
		return a.levels < b.levels
	case a.lossWeight != b.lossWeight:
		return a.lossWeight < b.lossWeight
	default:
		return a.downstreamFullProb < b.downstreamFullProb
	}
}

// less is the full canonical order: structural tuple first, UnitsPerLevel as
// the tie-break. Clients that tie on the structural tuple have identical LP
// columns, so any order among them yields the same program bit for bit —
// which is what keeps warm-started reuse deterministic.
func less(a, b clientKey) bool {
	if structuralLess(a, b) {
		return true
	}
	if structuralLess(b, a) {
		return false
	}
	return a.unitsPerLevel < b.unitsPerLevel
}

// canonicalOrder returns the model's client indices sorted into canonical
// order (stable, so equal tuples keep their relative model order).
func canonicalOrder(m *ctmdp.Model) []int {
	idx := make([]int, len(m.Clients))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return less(keyOf(m.Clients[idx[i]]), keyOf(m.Clients[idx[j]]))
	})
	return idx
}

// hasher accumulates the canonical byte serialisation.
type hasher struct {
	buf []byte
}

func (h *hasher) f64(v float64) {
	h.buf = binary.LittleEndian.AppendUint64(h.buf, math.Float64bits(v))
}

func (h *hasher) i64(v int64) {
	h.buf = binary.LittleEndian.AppendUint64(h.buf, uint64(v))
}

func (h *hasher) bool(v bool) {
	if v {
		h.buf = append(h.buf, 1)
	} else {
		h.buf = append(h.buf, 0)
	}
}

// str serialises a length-prefixed string (self-delimiting, so adjacent
// fields can never alias across a boundary shift).
func (h *hasher) str(s string) {
	h.i64(int64(len(s)))
	h.buf = append(h.buf, s...)
}

func (h *hasher) sum() Key { return sha256.Sum256(h.buf) }

// version tags the serialisation layout; bump on any change to what a
// fingerprint covers so stale cross-process caches can never alias.
// Version 2 introduced the backend tag below; version 3 added the stationary
// auto-path thresholds to the fingerprinted options.
const version = 3

// Backend domain-separation tags. Every fingerprint serialises the solver
// backend that produced (or will produce) the payload immediately after the
// version, so a solution computed by one backend can never be looked up —
// and rebound — as another's: an analytic M/M/1/K sizing and an exact
// CTMDP/LP solution of the same model occupy disjoint key spaces by
// construction.
const (
	backendExact     = 0
	backendAnalytic  = 1
	backendPlacement = 2
	backendRobust    = 3
)

func (h *hasher) options(o SolveOptions) {
	h.bool(o.Refine)
	h.i64(int64(o.Stationary.Method))
	h.f64(o.Stationary.Tol)
	h.i64(int64(o.Stationary.MaxIters))
	h.i64(int64(o.Stationary.DenseThreshold))
	h.i64(int64(o.Stationary.AggregationThreshold))
}

// fingerprint serialises the model in canonical client order. withUnits
// selects the full key (capacities included) or the structural key
// (capacities excluded — the warm-start equivalence class).
func fingerprint(m *ctmdp.Model, opts SolveOptions, withUnits bool) Key {
	h := &hasher{buf: make([]byte, 0, 64+24*len(m.Clients))}
	h.i64(version)
	h.i64(backendExact)
	h.bool(withUnits)
	h.f64(m.ServiceRate)
	h.i64(int64(len(m.Clients)))
	for _, i := range canonicalOrder(m) {
		k := keyOf(m.Clients[i])
		h.f64(k.lambda)
		h.i64(int64(k.levels))
		h.f64(k.lossWeight)
		h.f64(k.downstreamFullProb)
		if withUnits {
			h.f64(k.unitsPerLevel)
		}
	}
	h.options(opts)
	return h.sum()
}

// Fingerprint returns the full content-addressed key of one sub-model solve:
// service rate, the canonically sorted per-client tuples (arrival rate,
// levels, loss weight, downstream-full probability, units per level) and the
// solve options. Client order, bus name, buffer IDs and aggregate membership
// are deliberately excluded — see DESIGN.md §4 for the contract.
func Fingerprint(m *ctmdp.Model, opts SolveOptions) Key {
	return fingerprint(m, opts, true)
}

// StructuralFingerprint is Fingerprint with the capacity quanta
// (UnitsPerLevel) excluded. Models sharing a structural fingerprint have
// bit-identical occupation-measure LPs and policy chains — capacities enter
// only occupancy-derived quantities — so a cached solution for one is an
// exact warm start for the others.
func StructuralFingerprint(m *ctmdp.Model, opts SolveOptions) Key {
	return fingerprint(m, opts, false)
}

// JointFingerprint keys a capped joint solve: the ordered full fingerprints
// of the blocks plus the linking occupancy cap. Unlike the decoupled case,
// block order matters here (it fixes the joint program's variable layout).
func JointFingerprint(models []*ctmdp.Model, cap float64, opts SolveOptions) Key {
	h := &hasher{}
	h.i64(version)
	h.i64(backendExact)
	h.i64(int64(len(models)))
	for _, m := range models {
		k := Fingerprint(m, opts)
		h.buf = append(h.buf, k[:]...)
	}
	h.f64(cap)
	return h.sum()
}

// JointStructuralFingerprint keys the delta-resolve tier: the ordered
// structural fingerprints of a capped joint program's blocks, with the cap
// and the capacity quanta excluded. Two capped programs sharing this key have
// bit-identical balance rows and objectives — they differ at most in the
// linking occupancy row's coefficients (unit scalings) and right-hand side
// (the cap), which is exactly the one-row patch ctmdp.CappedResolver applies.
// Block order matters, as in JointFingerprint.
func JointStructuralFingerprint(models []*ctmdp.Model, opts SolveOptions) Key {
	h := &hasher{}
	h.i64(version)
	h.i64(backendExact)
	h.str("joint-delta")
	h.i64(int64(len(models)))
	for _, m := range models {
		k := StructuralFingerprint(m, opts)
		h.buf = append(h.buf, k[:]...)
	}
	return h.sum()
}

// AnalyticFingerprint keys one analytic (M/M/1/K marginal-allocation)
// sizing: the canonical byte serialisation of the buffered architecture the
// backend sized, the budget, and the fixed-point iteration count. The
// backendAnalytic tag puts these keys in a key space disjoint from every
// exact CTMDP fingerprint, so an analytic allocation can never rebind as an
// exact solution (or vice versa) even on a (vanishing) hash collision of
// the content bytes.
func AnalyticFingerprint(archBytes []byte, budget, boundaryIters int) Key {
	h := &hasher{buf: make([]byte, 0, 32+len(archBytes))}
	h.i64(version)
	h.i64(backendAnalytic)
	h.i64(int64(budget))
	h.i64(int64(boundaryIters))
	h.i64(int64(len(archBytes)))
	h.buf = append(h.buf, archBytes...)
	return h.sum()
}

// RobustFingerprint keys one robust (chance-constrained Monte-Carlo)
// sizing: the canonical byte serialisation of the buffered architecture
// (weights appended, as in the analytic key), the uncertainty spec's
// canonical JSON (σ's, sample count, confidence, target, seed — all of
// which change what the decision IS), the budget and the fixed-point depth.
// The backendRobust tag keeps these keys disjoint from every exact,
// analytic and placement fingerprint, so a robust sizing can never rebind
// as a nominal solution (or vice versa).
func RobustFingerprint(archBytes, specBytes []byte, budget, boundaryIters int) Key {
	h := &hasher{buf: make([]byte, 0, 64+len(archBytes)+len(specBytes))}
	h.i64(version)
	h.i64(backendRobust)
	h.i64(int64(budget))
	h.i64(int64(boundaryIters))
	h.i64(int64(len(specBytes)))
	h.buf = append(h.buf, specBytes...)
	h.i64(int64(len(archBytes)))
	h.buf = append(h.buf, archBytes...)
	return h.sum()
}

// PlacementMeta is everything besides the architecture that changes what a
// placement run's outcome IS: the buffer-type catalogue, the budgets, the
// screening weight, the refinement backend and depth, and the evaluation
// knobs (iterations, seeds, horizon, warm-up — the frontier's evaluated
// losses are simulated under them). See DESIGN.md §7 for how this extends
// the §4 cache-key contract.
type PlacementMeta struct {
	Budget        int
	CostBudget    float64
	LatencyWeight float64
	Method        string
	RefineTop     int
	Iterations    int
	Seeds         []int64
	Horizon       float64
	WarmUp        float64
	// Types is the flattened catalogue: (name, cost, delay) per entry, in
	// request order (order is identity — it breaks frontier tie-breaks).
	TypeNames  []string
	TypeCosts  []float64
	TypeDelays []float64
}

// PlacementFingerprint keys one full placement run: the canonical byte
// serialisation of the ORIGINAL (pre-contraction) architecture plus the
// placement metadata. The backendPlacement tag keeps these keys disjoint
// from every exact and analytic fingerprint, so a cached placement result
// can never rebind as a sizing solution (or vice versa).
func PlacementFingerprint(archBytes []byte, meta PlacementMeta) Key {
	h := &hasher{buf: make([]byte, 0, 128+len(archBytes))}
	h.i64(version)
	h.i64(backendPlacement)
	h.i64(int64(meta.Budget))
	h.f64(meta.CostBudget)
	h.f64(meta.LatencyWeight)
	h.str(meta.Method)
	h.i64(int64(meta.RefineTop))
	h.i64(int64(meta.Iterations))
	h.i64(int64(len(meta.Seeds)))
	for _, s := range meta.Seeds {
		h.i64(s)
	}
	h.f64(meta.Horizon)
	h.f64(meta.WarmUp)
	h.i64(int64(len(meta.TypeNames)))
	for i := range meta.TypeNames {
		h.str(meta.TypeNames[i])
		h.f64(meta.TypeCosts[i])
		h.f64(meta.TypeDelays[i])
	}
	h.i64(int64(len(archBytes)))
	h.buf = append(h.buf, archBytes...)
	return h.sum()
}
