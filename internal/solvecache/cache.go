// Package solvecache is the solve-reuse layer of the sweep engine: a
// content-addressed cache of per-bus CTMDP solutions, shared safely across
// the internal/parallel worker pool, plus warm-started re-solves for the
// cache misses that are "near" a cached solution.
//
// Why this works: after the paper's buffer insertion, every bus is an
// independent linear subsystem, so a sweep (budgets × seeds × scenarios ×
// methodology iterations) re-solves many bit-identical sub-models. The cache
// keys each sub-model solve by a canonical fingerprint of its mathematical
// content (Fingerprint) — client order, bus names and buffer IDs are
// normalised away — and returns a stored solution rebound onto the
// requesting model. Two tiers:
//
//   - exact hits: the full fingerprint (capacities included) matches; the
//     cached solution is returned outright.
//   - warm starts: only the capacity quanta differ (StructuralFingerprint
//     matches). Capacities do not appear in the occupation-measure LP or the
//     policy-induced chain, so the cached solution is exact for the new
//     model too; occupancy-derived quantities are recomputed from the
//     requesting model. This is the "solve seeded from the nearest cached
//     solution" fast path, and it converges in zero iterations by
//     construction. Genuinely different models (rates changed) miss and
//     solve cold; capped joint solves additionally seed their stationary
//     refinement from the cached free solution via
//     ctmdp.StationaryOptions.Warm.
//
// Determinism: a cached payload is a pure function of its fingerprint — cold
// misses solve a canonicalised copy of the model, and warm reuse is
// bit-identical to what that canonical cold solve would produce (the
// programs are the same bits). Sweep results therefore do not depend on
// which worker populated the cache first, preserving the repo-wide
// "identical results for any worker count" contract. Enabling the cache may
// shift results relative to the uncached path at roundoff level (sub-models
// are solved per-block rather than in one block-diagonal program); the
// correctness gate pins the two within 1e-8 on all fixtures.
//
// The cache is unbounded: a sweep's distinct sub-models number in the
// hundreds and payloads are a few KB each. Callers that sweep unrelated
// workloads should use one cache per fleet and drop it afterwards.
package solvecache

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"socbuf/internal/ctmdp"
	"socbuf/internal/lp"
	"socbuf/internal/uncertain"
)

// Cache is a concurrency-safe, content-addressed store of solved sub-models.
// The zero value is NOT usable; call New. A nil *Cache is a valid "caching
// disabled" receiver for SolveJoint.
type Cache struct {
	mu         sync.Mutex
	exact      map[Key]*entry
	structural map[Key]*entry
	joint      map[Key]*jointEntry
	analytic   map[Key]*AnalyticSolution
	robust     map[Key]*RobustSolution
	placement  map[Key][]byte

	hits, misses, warm         atomic.Int64
	jointHits, jointMiss       atomic.Int64
	analyticHit, analyticMis   atomic.Int64
	robustHit, robustMis       atomic.Int64
	placementHit, placementMis atomic.Int64

	// remote is the optional shared store behind the exact/analytic/robust/
	// placement tiers (see SetRemote and remote.go); remoteHit counts
	// payloads adopted from it, remoteMis consults that came back empty or
	// undecodable. Both stay zero when no store is attached.
	remote               Store
	remoteHit, remoteMis atomic.Int64

	// Delta tier (opt-in, see EnableDelta): capped-program resolvers keyed by
	// JointStructuralFingerprint, each holding a retained simplex tableau
	// that re-solves sibling programs (new cap and/or unit scalings) by a
	// rank-one row patch instead of a fresh warm-started solve.
	deltaEnabled         bool
	delta                map[Key]*deltaEntry
	deltaHit, deltaShrug atomic.Int64
}

// deltaEntry serialises chained re-solves of one structural program family.
// The per-entry lock (not the cache-wide mu) is held across the whole LP
// re-solve: concurrent solves of different families proceed in parallel,
// while two solves of the same family queue — the second usually turns the
// first's result into an exact joint hit anyway.
type deltaEntry struct {
	mu  sync.Mutex
	res *ctmdp.CappedResolver
}

// maxDeltaEntries bounds the delta tier: retained tableaus are dense
// (rows × variables floats — MBs for the big joint programs), unlike the
// few-KB payload entries, so this tier cannot be unbounded like the others.
// A sweep has one structural family per methodology-iteration index (the
// boundary trajectory is allocation-independent), so a handful suffice;
// once full, new families simply solve without delta reuse.
const maxDeltaEntries = 32

// entry is one cached sub-model solution, aligned to its canonical model.
// Entries are immutable after insertion; readers always rebind into freshly
// allocated slices.
type entry struct {
	model *ctmdp.Model         // canonical clone (sorted clients, neutral names)
	sol   *ctmdp.ModelSolution // payload aligned to model's enumeration
	iters int                  // simplex pivots of the cold solve (informational)
	// basis is the free solve's final LP basis — the strong warm-start seed
	// for re-solving the same balance system under an occupancy cap.
	basis []lp.BasicRef
}

// jointEntry is one cached capped joint solve. Like all hit paths, assembled
// hits report Iters=0 — the field counts pivots actually performed.
type jointEntry struct {
	entries    []*entry
	totalLoss  float64
	occUsed    float64
	capBinding bool
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		exact:      map[Key]*entry{},
		structural: map[Key]*entry{},
		joint:      map[Key]*jointEntry{},
		analytic:   map[Key]*AnalyticSolution{},
		robust:     map[Key]*RobustSolution{},
		placement:  map[Key][]byte{},
		delta:      map[Key]*deltaEntry{},
	}
}

// EnableDelta turns on the delta re-solve tier for capped joint programs:
// joint misses within a known structural family (same models up to unit
// scalings, any cap) are answered by patching the family's retained simplex
// tableau — a rank-one update plus a few dual pivots — instead of assembling
// and warm-solving a fresh program. The LP layer's residual self-check falls
// back to a cold solve whenever a patched tableau does not certify, so a
// delta answer can differ from a fresh solve only in which optimal vertex a
// degenerate program reports, within the 1e-8 agreement gate.
//
// Off by default: chaining makes a capped solve's exact bit pattern depend
// on which sibling programs the resolver saw first, so with concurrent
// workers the roundoff-level bits of delta-tier answers can vary with
// schedule — a deliberate relaxation of the cache's bit-purity contract that
// callers must opt into (serial sweeps remain fully deterministic). Call
// before solving; toggling mid-flight is not synchronised.
func (c *Cache) EnableDelta() {
	if c != nil {
		c.deltaEnabled = true
	}
}

// AnalyticSolution is one cached analytic sizing: the closed-form backend's
// chosen allocation and its weighted loss-rate estimate. Stored payloads are
// immutable; lookups return fresh allocation maps.
type AnalyticSolution struct {
	Alloc    map[string]int
	LossRate float64
}

// clone returns an aliasing-free copy (cached payloads never leak mutable
// state to callers — the same contract as the exact tiers' rebind).
func (s *AnalyticSolution) clone() *AnalyticSolution {
	alloc := make(map[string]int, len(s.Alloc))
	for id, u := range s.Alloc {
		alloc[id] = u
	}
	return &AnalyticSolution{Alloc: alloc, LossRate: s.LossRate}
}

// LookupAnalytic fetches a cached analytic sizing by its
// AnalyticFingerprint key, falling back to the attached remote store on a
// local miss (an adopted remote payload is stored locally and counts as
// both an analytic and a remote hit). A nil receiver (caching disabled)
// always misses without counting.
func (c *Cache) LookupAnalytic(k Key) (*AnalyticSolution, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	s := c.analytic[k]
	c.mu.Unlock()
	if s == nil {
		var rs AnalyticSolution
		if c.remoteGet(k, "analytic", &rs) && rs.Alloc != nil {
			c.analyticHit.Add(1)
			cp := rs.clone()
			c.mu.Lock()
			c.analytic[k] = cp
			c.mu.Unlock()
			return rs.clone(), true
		}
		c.analyticMis.Add(1)
		return nil, false
	}
	c.analyticHit.Add(1)
	return s.clone(), true
}

// PutAnalytic stores one analytic sizing under its AnalyticFingerprint key.
// The payload is copied in; concurrent duplicate stores of the same key are
// benign (analytic solves are deterministic functions of the key). A nil
// receiver is a no-op.
func (c *Cache) PutAnalytic(k Key, s *AnalyticSolution) {
	if c == nil || s == nil {
		return
	}
	cp := s.clone()
	c.mu.Lock()
	c.analytic[k] = cp
	c.mu.Unlock()
	c.remotePutData(k, "analytic", s)
}

// RobustSolution is one cached robust sizing: the chance-constrained
// backend's chosen allocation, its nominal-screen loss estimate, and the
// full chance-constraint report. Stored payloads are immutable; lookups
// return fresh allocation maps.
type RobustSolution struct {
	Alloc    map[string]int
	LossRate float64
	Report   uncertain.Report
}

// clone returns an aliasing-free copy, matching the analytic tier's
// contract.
func (s *RobustSolution) clone() *RobustSolution {
	alloc := make(map[string]int, len(s.Alloc))
	for id, u := range s.Alloc {
		alloc[id] = u
	}
	return &RobustSolution{Alloc: alloc, LossRate: s.LossRate, Report: s.Report}
}

// LookupRobust fetches a cached robust sizing by its RobustFingerprint
// key, falling back to the attached remote store on a local miss. A nil
// receiver (caching disabled) always misses without counting.
func (c *Cache) LookupRobust(k Key) (*RobustSolution, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	s := c.robust[k]
	c.mu.Unlock()
	if s == nil {
		var rs RobustSolution
		if c.remoteGet(k, "robust", &rs) && rs.Alloc != nil {
			c.robustHit.Add(1)
			cp := rs.clone()
			c.mu.Lock()
			c.robust[k] = cp
			c.mu.Unlock()
			return rs.clone(), true
		}
		c.robustMis.Add(1)
		return nil, false
	}
	c.robustHit.Add(1)
	return s.clone(), true
}

// PutRobust stores one robust sizing under its RobustFingerprint key. The
// payload is copied in; concurrent duplicate stores of the same key are
// benign (robust solves are deterministic functions of the key). A nil
// receiver is a no-op.
func (c *Cache) PutRobust(k Key, s *RobustSolution) {
	if c == nil || s == nil {
		return
	}
	cp := s.clone()
	c.mu.Lock()
	c.robust[k] = cp
	c.mu.Unlock()
	c.remotePutData(k, "robust", s)
}

// LookupPlacement fetches a cached placement result by its
// PlacementFingerprint key. The payload is the engine's serialised
// placement result — opaque to this package (placement results are
// deterministic functions of the key, so byte-level storage is sound and
// keeps the dependency arrow pointing the right way). Returned bytes are a
// fresh copy. A nil receiver (caching disabled) always misses without
// counting.
func (c *Cache) LookupPlacement(k Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	b := c.placement[k]
	c.mu.Unlock()
	if b == nil {
		var raw json.RawMessage
		if c.remoteGet(k, "placement", &raw) && len(raw) > 0 {
			c.placementHit.Add(1)
			cp := make([]byte, len(raw))
			copy(cp, raw)
			c.mu.Lock()
			c.placement[k] = cp
			c.mu.Unlock()
			out := make([]byte, len(raw))
			copy(out, raw)
			return out, true
		}
		c.placementMis.Add(1)
		return nil, false
	}
	c.placementHit.Add(1)
	out := make([]byte, len(b))
	copy(out, b)
	return out, true
}

// PutPlacement stores one serialised placement result under its
// PlacementFingerprint key. The payload is copied in; concurrent duplicate
// stores are benign. A nil receiver or empty payload is a no-op.
func (c *Cache) PutPlacement(k Key, b []byte) {
	if c == nil || len(b) == 0 {
		return
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	c.mu.Lock()
	c.placement[k] = cp
	c.mu.Unlock()
	c.remotePutData(k, "placement", json.RawMessage(b))
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts sub-model solves answered by an exact fingerprint match.
	Hits int64
	// WarmStarts counts solves answered through a structural match (only
	// capacities differed from a cached solution).
	WarmStarts int64
	// Misses counts cold sub-model solves.
	Misses int64
	// JointHits / JointMisses count capped joint solves (the occupancy-cap
	// linked programs, cached at whole-program granularity).
	JointHits, JointMisses int64
	// AnalyticHits / AnalyticMisses count analytic-tier lookups — the
	// closed-form backend's sizing cache, keyed in a backend-tagged key
	// space disjoint from every exact fingerprint.
	AnalyticHits, AnalyticMisses int64
	// RobustHits / RobustMisses count robust-tier lookups — whole
	// chance-constrained sizings, keyed by RobustFingerprint in their own
	// backend-tagged key space.
	RobustHits, RobustMisses int64
	// PlacementHits / PlacementMisses count placement-tier lookups — whole
	// placement runs (frontier + chosen), keyed by PlacementFingerprint.
	PlacementHits, PlacementMisses int64
	// DeltaResolves counts capped joint misses answered through the delta
	// tier's retained tableaus; DeltaFallbacks counts delta attempts that had
	// to fall back to the ordinary solve path (patch rejected or resolver
	// error). Both stay zero unless EnableDelta was called.
	DeltaResolves, DeltaFallbacks int64
	// RemoteHits / RemoteMisses count consults of the attached remote store
	// (SetRemote): payloads adopted vs consults that came back empty or
	// undecodable. A remote hit additionally counts as a hit of its home
	// tier, so home-tier rates reflect what the engine got regardless of
	// source. Both stay zero when no store is attached.
	RemoteHits, RemoteMisses int64
	// Entries / JointEntries / AnalyticEntries / RobustEntries /
	// PlacementEntries / DeltaEntries are the stored solution counts per
	// tier.
	Entries, JointEntries, AnalyticEntries, RobustEntries, PlacementEntries, DeltaEntries int
}

// Rates derives per-tier hit rates from the counters, keyed by tier name.
// Only tiers that saw traffic appear, so an operator reading `/v1/stats` or a
// `-cache-stats` table sees rates exactly for the tiers the run exercised:
//
//	exact       Hits / (Hits + WarmStarts + Misses) — full-fingerprint hits
//	            over all sub-model lookups
//	structural  WarmStarts / (WarmStarts + Misses) — how often a non-exact
//	            lookup was still answered by a structural sibling
//	joint       JointHits / (JointHits + JointMisses)
//	joint-delta DeltaResolves / (DeltaResolves + DeltaFallbacks) — of the
//	            delta-tier attempts, how many the retained tableaus answered
//	analytic, robust, placement — hits / (hits + misses) of that tier
//	remote      RemoteHits / (RemoteHits + RemoteMisses) — adopted payloads
//	            over all remote consults
func (s Stats) Rates() map[string]float64 {
	rates := map[string]float64{}
	add := func(name string, num, den int64) {
		if den > 0 {
			rates[name] = float64(num) / float64(den)
		}
	}
	add("exact", s.Hits, s.Hits+s.WarmStarts+s.Misses)
	add("structural", s.WarmStarts, s.WarmStarts+s.Misses)
	add("joint", s.JointHits, s.JointHits+s.JointMisses)
	add("joint-delta", s.DeltaResolves, s.DeltaResolves+s.DeltaFallbacks)
	add("analytic", s.AnalyticHits, s.AnalyticHits+s.AnalyticMisses)
	add("robust", s.RobustHits, s.RobustHits+s.RobustMisses)
	add("placement", s.PlacementHits, s.PlacementHits+s.PlacementMisses)
	add("remote", s.RemoteHits, s.RemoteHits+s.RemoteMisses)
	return rates
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	// Warm-start promotion registers one stored solution under several full
	// keys; Entries counts solutions, not keys.
	distinct := make(map[*entry]struct{}, len(c.exact))
	for _, e := range c.exact {
		distinct[e] = struct{}{}
	}
	entries, jointEntries, analyticEntries, robustEntries, placementEntries, deltaEntries := len(distinct), len(c.joint), len(c.analytic), len(c.robust), len(c.placement), len(c.delta)
	c.mu.Unlock()
	return Stats{
		Hits:             c.hits.Load(),
		WarmStarts:       c.warm.Load(),
		Misses:           c.misses.Load(),
		JointHits:        c.jointHits.Load(),
		JointMisses:      c.jointMiss.Load(),
		AnalyticHits:     c.analyticHit.Load(),
		AnalyticMisses:   c.analyticMis.Load(),
		RobustHits:       c.robustHit.Load(),
		RobustMisses:     c.robustMis.Load(),
		PlacementHits:    c.placementHit.Load(),
		PlacementMisses:  c.placementMis.Load(),
		DeltaResolves:    c.deltaHit.Load(),
		DeltaFallbacks:   c.deltaShrug.Load(),
		RemoteHits:       c.remoteHit.Load(),
		RemoteMisses:     c.remoteMis.Load(),
		Entries:          entries,
		JointEntries:     jointEntries,
		AnalyticEntries:  analyticEntries,
		RobustEntries:    robustEntries,
		PlacementEntries: placementEntries,
		DeltaEntries:     deltaEntries,
	}
}

// lookup fetches the entry for the full key, or a structural sibling. The
// second return distinguishes exact (true) from warm (false) on success.
func (c *Cache) lookup(full, structural Key) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.exact[full]; ok {
		return e, true
	}
	return c.structural[structural], false
}

// put stores e under both keys. Concurrent duplicate solves of the same
// fingerprint store bit-identical payloads, so last-write-wins is benign.
func (c *Cache) put(full, structural Key, e *entry) {
	c.mu.Lock()
	c.exact[full] = e
	if _, ok := c.structural[structural]; !ok {
		c.structural[structural] = e
	}
	c.mu.Unlock()
}

// canonicalModel clones m with clients in canonical order under neutral
// names, stripped of aggregate membership — the solve-relevant content only.
// order is canonicalOrder(m).
func canonicalModel(m *ctmdp.Model, order []int) (*ctmdp.Model, error) {
	clients := make([]ctmdp.Client, len(order))
	for k, i := range order {
		cl := m.Clients[i]
		cl.BufferID = fmt.Sprintf("c%d", k)
		cl.Members, cl.MemberLambda = nil, nil
		clients[k] = cl
	}
	return ctmdp.NewModel("sub", m.ServiceRate, clients)
}

// rebindBasis maps the entry's canonical-program basis onto the requesting
// model's enumeration: structural refs are permuted var-for-var, balance-row
// refs state-for-state (the canonical single-model program lays out one
// balance row per state, in state order, then the normalisation row). The
// result is a valid basis for a program assembled over the requesting model.
func (e *entry) rebindBasis(m *ctmdp.Model, order []int) ([]lp.BasicRef, error) {
	if e.basis == nil {
		return nil, nil
	}
	nc := len(m.Clients)
	n := m.NumStates()
	cpos := make([]int, nc)
	for k, i := range order {
		cpos[i] = k
	}
	stateMap := make([]int, n) // canonical state -> requesting state
	varMap := make([]int, len(e.sol.X))
	clevels := make([]int, nc)
	for s := 0; s < n; s++ {
		for c := 0; c < nc; c++ {
			clevels[cpos[c]] = m.Level(s, c)
		}
		cs, err := e.model.StateOf(clevels)
		if err != nil {
			return nil, fmt.Errorf("solvecache: rebind basis state %d: %w", s, err)
		}
		stateMap[cs] = s
		for _, v := range m.StateVars(s) {
			_, a := m.VarStateAction(v)
			ca := -1
			if a >= 0 {
				ca = cpos[a]
			}
			cv, ok := e.model.VarIndex(cs, ca)
			if !ok {
				return nil, fmt.Errorf("solvecache: rebind basis: canonical model lacks var (state %d, action %d)", cs, ca)
			}
			varMap[cv] = v
		}
	}
	out := make([]lp.BasicRef, len(e.basis))
	for i, ref := range e.basis {
		switch {
		case ref.Var >= 0:
			if ref.Var >= len(varMap) {
				return nil, fmt.Errorf("solvecache: rebind basis: var ref %d out of range", ref.Var)
			}
			ref.Var = varMap[ref.Var]
		case ref.Row < n:
			ref.Row = stateMap[ref.Row]
		}
		// The normalisation row (index n) stays where it is.
		out[i] = ref
	}
	return out, nil
}

// matches sanity-checks a candidate entry against the requesting model's
// canonical view before rebinding: same client count, service rate and
// structural tuples. Guards against (astronomically unlikely) hash
// collisions and any drift in the canonicalisation.
func (e *entry) matches(m *ctmdp.Model, order []int) bool {
	if len(e.model.Clients) != len(m.Clients) || e.model.ServiceRate != m.ServiceRate {
		return false
	}
	for k, i := range order {
		a, b := keyOf(e.model.Clients[k]), keyOf(m.Clients[i])
		a.unitsPerLevel, b.unitsPerLevel = 0, 0
		if a != b {
			return false
		}
	}
	return true
}

// rebind maps the entry's canonical solution onto the requesting model:
// states, occupation variables and policy rows are permuted from canonical
// client order back to the model's own order, into fresh allocations (cached
// payloads are never aliased out). order is canonicalOrder(m).
func (e *entry) rebind(m *ctmdp.Model, order []int) (*ctmdp.ModelSolution, error) {
	nc := len(m.Clients)
	// cpos[c] = canonical position of the model's client c.
	cpos := make([]int, nc)
	for k, i := range order {
		cpos[i] = k
	}
	n := m.NumStates()
	ms := &ctmdp.ModelSolution{
		Model:     m,
		X:         make([]float64, m.NumVars()),
		StateProb: make([]float64, n),
		LossRate:  e.sol.LossRate, // cost rates are capacity- and order-invariant
	}
	pol := &ctmdp.Policy{
		Model:      m,
		ActionProb: make([][]float64, n),
		Visited:    make([]bool, n),
	}
	clevels := make([]int, nc)
	for s := 0; s < n; s++ {
		for c := 0; c < nc; c++ {
			clevels[cpos[c]] = m.Level(s, c)
		}
		cs, err := e.model.StateOf(clevels)
		if err != nil {
			return nil, fmt.Errorf("solvecache: rebind state %d: %w", s, err)
		}
		ms.StateProb[s] = e.sol.StateProb[cs]
		row := make([]float64, nc)
		for c := 0; c < nc; c++ {
			row[c] = e.sol.Policy.ActionProb[cs][cpos[c]]
		}
		pol.ActionProb[s] = row
		pol.Visited[s] = e.sol.Policy.Visited[cs]
		for _, v := range m.StateVars(s) {
			_, a := m.VarStateAction(v)
			ca := -1
			if a >= 0 {
				ca = cpos[a]
			}
			cv, ok := e.model.VarIndex(cs, ca)
			if !ok {
				return nil, fmt.Errorf("solvecache: rebind: canonical model lacks var (state %d, action %d)", cs, ca)
			}
			ms.X[v] = e.sol.X[cv]
		}
	}
	ms.Policy = pol
	return ms, nil
}
