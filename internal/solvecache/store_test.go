package solvecache_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"socbuf/internal/ctmdp"
	"socbuf/internal/solvecache"
)

// storeClients is a small solvable bus shared by the remote-tier tests.
var storeClients = []ctmdp.Client{
	{BufferID: "a", Lambda: 1.2, Levels: 2, UnitsPerLevel: 3, LossWeight: 1},
	{BufferID: "b", Lambda: 0.4, Levels: 2, UnitsPerLevel: 2, LossWeight: 2, DownstreamFullProb: 0.2},
}

func storeModel(t *testing.T) *ctmdp.Model {
	t.Helper()
	m, err := ctmdp.NewModel("bus", 4, storeClients)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := solvecache.NewMemStore()
	k := solvecache.AnalyticFingerprint([]byte("arch"), 10, 3)
	if _, ok := s.Get(context.Background(), k); ok {
		t.Fatal("empty store must miss")
	}
	payload := []byte("hello")
	s.Put(context.Background(), k, payload)
	payload[0] = 'X' // the store must have copied
	got, ok := s.Get(context.Background(), k)
	if !ok || string(got) != "hello" {
		t.Fatalf("got %q, %v; want \"hello\", true", got, ok)
	}
	got[0] = 'Y' // and must hand back copies
	if b, _ := s.Get(context.Background(), k); string(b) != "hello" {
		t.Fatalf("store payload mutated through returned slice: %q", b)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// TestRemoteExactTierSharing is the tentpole's consistency gate at package
// level: two caches sharing one store answer the second cache's solve from
// the first's payload, bit-identically to a cold solve.
func TestRemoteExactTierSharing(t *testing.T) {
	shared := solvecache.NewMemStore()
	a, b := solvecache.New(), solvecache.New()
	a.SetRemote(shared)
	b.SetRemote(shared)

	m1, m2 := storeModel(t), storeModel(t)
	cfg := ctmdp.JointConfig{}
	want, err := a.SolveJoint([]*ctmdp.Model{m1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Len() == 0 {
		t.Fatal("cold solve did not write behind to the shared store")
	}
	got, err := b.SolveJoint([]*ctmdp.Model{m2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb := b.Stats()
	if sb.Hits != 1 || sb.Misses != 0 || sb.RemoteHits != 1 {
		t.Fatalf("second cache must answer from the shared store: %+v", sb)
	}
	// Bit-identical: both sides rebound the same canonical payload.
	assertSolutionsAgree(t, want, got, 0, "remote adoption vs local solve")
	// The adopted payload is now local: a re-solve is a plain hit with no
	// further remote consults.
	if _, err := b.SolveJoint([]*ctmdp.Model{m2}, cfg); err != nil {
		t.Fatal(err)
	}
	sb2 := b.Stats()
	if sb2.Hits != 2 || sb2.RemoteHits != 1 {
		t.Fatalf("adopted payload must be cached locally: %+v", sb2)
	}
}

// TestRemoteSidecarTiers covers the JSON envelope tiers (analytic, robust,
// placement) across two caches sharing one store.
func TestRemoteSidecarTiers(t *testing.T) {
	shared := solvecache.NewMemStore()
	a, b := solvecache.New(), solvecache.New()
	a.SetRemote(shared)
	b.SetRemote(shared)

	ak := solvecache.AnalyticFingerprint([]byte("arch"), 10, 3)
	a.PutAnalytic(ak, &solvecache.AnalyticSolution{Alloc: map[string]int{"x": 4}, LossRate: 0.25})
	got, ok := b.LookupAnalytic(ak)
	if !ok || got.Alloc["x"] != 4 || got.LossRate != 0.25 {
		t.Fatalf("analytic remote adoption failed: %+v, %v", got, ok)
	}

	rk := solvecache.RobustFingerprint([]byte("arch"), []byte("spec"), 10, 3)
	a.PutRobust(rk, &solvecache.RobustSolution{Alloc: map[string]int{"y": 7}, LossRate: 0.5})
	rgot, ok := b.LookupRobust(rk)
	if !ok || rgot.Alloc["y"] != 7 {
		t.Fatalf("robust remote adoption failed: %+v, %v", rgot, ok)
	}

	pk := solvecache.PlacementFingerprint([]byte("arch"), solvecache.PlacementMeta{})
	a.PutPlacement(pk, []byte(`{"frontier":[1,2,3]}`))
	pgot, ok := b.LookupPlacement(pk)
	if !ok || string(pgot) != `{"frontier":[1,2,3]}` {
		t.Fatalf("placement remote adoption failed: %q, %v", pgot, ok)
	}

	sb := b.Stats()
	if sb.RemoteHits != 3 || sb.AnalyticHits != 1 || sb.RobustHits != 1 || sb.PlacementHits != 1 {
		t.Fatalf("stats after three adoptions: %+v", sb)
	}
	// Tier tags must not alias: an analytic lookup under the placement key
	// space (different backend tag) misses rather than decoding junk.
	if _, ok := b.LookupAnalytic(pk); ok {
		t.Fatal("cross-tier key must miss")
	}
}

// TestStoreHandlerProtocol pins the sidecar wire protocol: GET/PUT by hex
// key, version tagging, and the rejection paths.
func TestStoreHandlerProtocol(t *testing.T) {
	mem := solvecache.NewMemStore()
	srv := httptest.NewServer(http.StripPrefix("/v1/cache", solvecache.StoreHandler(mem)))
	defer srv.Close()
	k := solvecache.AnalyticFingerprint([]byte("arch"), 1, 1)
	keyHex := fmt.Sprintf("%x", k[:])
	url := srv.URL + "/v1/cache/" + keyHex

	// GET miss → 404.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET miss: status %d, want 404", resp.StatusCode)
	}

	// PUT without the version header → 400, nothing stored.
	req, _ := http.NewRequest(http.MethodPut, url, strings.NewReader("payload"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || mem.Len() != 0 {
		t.Fatalf("unversioned PUT: status %d, stored %d; want 400, 0", resp.StatusCode, mem.Len())
	}

	// Bad key → 400.
	resp, err = http.Get(srv.URL + "/v1/cache/nothex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: status %d, want 400", resp.StatusCode)
	}

	// Versioned PUT → 204; GET → 200 with the version header and the bytes.
	remote := solvecache.NewRemoteStore(srv.URL+"/v1/cache", solvecache.RemoteOptions{})
	defer remote.Close()
	remote.Put(nil, k, []byte("payload"))
	waitFor(t, func() bool { return mem.Len() == 1 }, "write-behind PUT to land")
	b, ok := remote.Get(nil, k)
	if !ok || string(b) != "payload" {
		t.Fatalf("round trip through RemoteStore: %q, %v", b, ok)
	}
	if st := remote.Stats(); st.Hits != 1 || st.Errors != 0 {
		t.Fatalf("remote stats: %+v", st)
	}
}

// TestRemoteStoreVersionDrift pins the belt-and-braces version check: a peer
// answering with a different serialisation version is a miss, never adopted.
func TestRemoteStoreVersionDrift(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Socbuf-Cache-Version", "999")
		_, _ = w.Write([]byte("stale-layout"))
	}))
	defer srv.Close()
	remote := solvecache.NewRemoteStore(srv.URL, solvecache.RemoteOptions{})
	defer remote.Close()
	if _, ok := remote.Get(nil, solvecache.Key{}); ok {
		t.Fatal("version drift must be a miss")
	}
	if st := remote.Stats(); st.Errors != 1 {
		t.Fatalf("version drift must count as an error: %+v", st)
	}
}

// TestRemoteStoreFailOpen is the dead-peer contract: with the store pointed
// at a refused port, solves still succeed (remote consults degrade to
// misses) and the breaker eventually stops touching the network.
func TestRemoteStoreFailOpen(t *testing.T) {
	// A listener that is immediately closed yields a port that refuses fast.
	srv := httptest.NewServer(http.NotFoundHandler())
	deadURL := srv.URL
	srv.Close()

	remote := solvecache.NewRemoteStore(deadURL, solvecache.RemoteOptions{
		Timeout:          50 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
	})
	defer remote.Close()
	c := solvecache.New()
	c.SetRemote(remote)

	got, err := c.SolveJoint([]*ctmdp.Model{storeModel(t)}, ctmdp.JointConfig{})
	if err != nil {
		t.Fatalf("a dead peer must never fail a solve: %v", err)
	}
	want, err := ctmdp.SolveJoint([]*ctmdp.Model{storeModel(t)}, ctmdp.JointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	assertSolutionsAgree(t, want, got, 1e-8, "solve with dead peer vs plain")

	// Drive the breaker open, then verify Gets stop hitting the network.
	for i := 0; i < 4; i++ {
		remote.Get(nil, solvecache.Key{})
	}
	if st := remote.Stats(); !st.BreakerOpen {
		t.Fatalf("breaker must open after consecutive failures: %+v", st)
	}
	before := remote.Stats().Gets
	remote.Get(nil, solvecache.Key{})
	if after := remote.Stats().Gets; after != before {
		t.Fatalf("open breaker must short-circuit: gets %d -> %d", before, after)
	}
}

// TestRemoteStorePutQueueBound pins the never-block contract: with the
// write-behind queue saturated against a stalled peer, Puts drop rather
// than stall the caller.
func TestRemoteStorePutQueueBound(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // stall every request until the test finishes
	}))
	defer func() { once.Do(func() { close(release) }); srv.Close() }()

	remote := solvecache.NewRemoteStore(srv.URL, solvecache.RemoteOptions{
		Timeout:  5 * time.Second,
		PutQueue: 1,
	})
	defer remote.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 64; i++ {
			remote.Put(nil, solvecache.Key{byte(i)}, []byte("x"))
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Put blocked on a saturated queue")
	}
	if st := remote.Stats(); st.PutDrops == 0 {
		t.Fatalf("saturated queue must count drops: %+v", st)
	}
}

// TestRemotePoisonedPayload pins the hostile-payload contract: undecodable
// or dimensionally inconsistent remote bytes are misses, never errors or
// adopted junk.
func TestRemotePoisonedPayload(t *testing.T) {
	shared := solvecache.NewMemStore()
	c := solvecache.New()
	c.SetRemote(shared)
	m := storeModel(t)
	k := solvecache.Fingerprint(m, solvecache.SolveOptions{})
	for _, poison := range []string{
		"not json",
		`{"tier":"exact","data":{"serviceRate":4,"clients":[],"x":[],"stateProb":[],"actionProb":[],"visited":[]}}`,
		`{"tier":"exact","data":{"serviceRate":4,"clients":[{"bufferId":"a","lambda":1.2,"levels":2,"unitsPerLevel":3,"lossWeight":1}],"x":[1],"stateProb":[1],"actionProb":[[1]],"visited":[true]}}`,
	} {
		shared.Put(context.Background(), k, []byte(poison))
		got, err := c.SolveJoint([]*ctmdp.Model{m}, ctmdp.JointConfig{})
		if err != nil {
			t.Fatalf("poisoned payload %q must not fail the solve: %v", poison, err)
		}
		want, err := ctmdp.SolveJoint([]*ctmdp.Model{storeModel(t)}, ctmdp.JointConfig{})
		if err != nil {
			t.Fatal(err)
		}
		assertSolutionsAgree(t, want, got, 1e-8, "solve past poisoned payload")
	}
	if s := c.Stats(); s.RemoteHits != 0 {
		t.Fatalf("poisoned payloads must never count as remote hits: %+v", s)
	}
}

// TestStatsRates pins the per-tier rate derivation, including the only-
// tiers-with-traffic rule.
func TestStatsRates(t *testing.T) {
	s := solvecache.Stats{
		Hits: 3, WarmStarts: 1, Misses: 1,
		AnalyticHits: 1, AnalyticMisses: 3,
		RemoteHits: 1, RemoteMisses: 1,
	}
	r := s.Rates()
	approx := func(name string, want float64) {
		t.Helper()
		got, ok := r[name]
		if !ok {
			t.Fatalf("rate %q missing: %v", name, r)
		}
		if d := got - want; d > 1e-12 || d < -1e-12 {
			t.Errorf("rate %q = %g, want %g", name, got, want)
		}
	}
	approx("exact", 0.6)
	approx("structural", 0.5)
	approx("analytic", 0.25)
	approx("remote", 0.5)
	for _, quiet := range []string{"joint", "joint-delta", "robust", "placement"} {
		if _, ok := r[quiet]; ok {
			t.Errorf("tier %q saw no traffic but has a rate", quiet)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
