package solvecache_test

import (
	"errors"
	"math"
	"testing"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/ctmdp"
	"socbuf/internal/lp"
	"socbuf/internal/parallel"
	"socbuf/internal/solvecache"
)

// presets is the warm-vs-cold equivalence table: every architecture preset
// at its usual test budget.
var presets = []struct {
	name   string
	arch   func() *arch.Architecture
	budget int
}{
	{"figure1", arch.Figure1, 40},
	{"twobus", arch.TwoBusAMBA, 24},
	{"netproc", arch.NetworkProcessor, 160},
}

// presetModels builds the initial sub-models of one preset at one budget —
// the same construction core.Run starts from.
func presetModels(t *testing.T, newArch func() *arch.Architecture, budget int) []*ctmdp.Model {
	t.Helper()
	a := newArch()
	a.InsertBridgeBuffers()
	alloc, err := arch.UniformAllocation(a, budget)
	if err != nil {
		t.Fatal(err)
	}
	models, err := core.BuildSubsystemModels(a, alloc, core.Config{Arch: a, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	return models
}

// maxDiff returns max_i |a_i − b_i|.
func maxDiff(t *testing.T, a, b []float64) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("length mismatch %d vs %d", len(a), len(b))
	}
	var mx float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// assertSolutionsAgree checks two joint solutions describe the same optimum
// to tol: objective, per-model loss rates, stationary distributions and
// occupation measures.
func assertSolutionsAgree(t *testing.T, a, b *ctmdp.JointSolution, tol float64, label string) {
	t.Helper()
	if d := math.Abs(a.TotalLossRate - b.TotalLossRate); d > tol {
		t.Errorf("%s: total loss rates differ by %g", label, d)
	}
	if d := math.Abs(a.OccupancyUsed - b.OccupancyUsed); d > tol {
		t.Errorf("%s: occupancies differ by %g", label, d)
	}
	if len(a.PerModel) != len(b.PerModel) {
		t.Fatalf("%s: model counts differ", label)
	}
	for i := range a.PerModel {
		am, bm := a.PerModel[i], b.PerModel[i]
		if d := math.Abs(am.LossRate - bm.LossRate); d > tol {
			t.Errorf("%s: model %d loss rates differ by %g", label, i, d)
		}
		if d := maxDiff(t, am.StateProb, bm.StateProb); d > tol {
			t.Errorf("%s: model %d stationary distributions differ by %g", label, i, d)
		}
		if d := maxDiff(t, am.X, bm.X); d > tol {
			t.Errorf("%s: model %d occupation measures differ by %g", label, i, d)
		}
	}
}

// TestWarmVsColdEquivalence is the correctness gate of the tentpole: over
// every architecture preset, with refinement off and on, the cache's three
// answer paths — cold canonical solve, exact hit, and capacity-changed warm
// start — agree with each other to 1e-8 (hits and warm starts are in fact
// bit-identical to the canonical cold solve), and with the uncached solver
// on the optimum they reach.
func TestWarmVsColdEquivalence(t *testing.T) {
	for _, p := range presets {
		for _, refine := range []bool{false, true} {
			cfg := ctmdp.JointConfig{RefineStationary: refine}
			name := p.name
			if refine {
				name += "-refined"
			}
			t.Run(name, func(t *testing.T) {
				models := presetModels(t, p.arch, p.budget)
				uncached, err := ctmdp.SolveJoint(models, cfg)
				if err != nil {
					t.Fatal(err)
				}

				c := solvecache.New()
				cold, err := c.SolveJoint(models, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if s := c.Stats(); s.Misses != int64(len(models)) || s.Hits != 0 {
					t.Fatalf("cold pass counters off: %+v", s)
				}
				// The cache solves per canonical block rather than one
				// block-diagonal program, so it may land on a different
				// vertex of a degenerate optimum; the optimum itself (the
				// objective) must agree to 1e-8.
				if d := math.Abs(cold.TotalLossRate - uncached.TotalLossRate); d > 1e-8 {
					t.Errorf("cached vs uncached objectives differ by %g", d)
				}

				hit, err := c.SolveJoint(models, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if s := c.Stats(); s.Hits != int64(len(models)) {
					t.Fatalf("exact pass counters off: %+v", s)
				}
				assertSolutionsAgree(t, cold, hit, 1e-8, "cold vs exact hit")

				// Capacity change only: rebuild the models at a different
				// budget — UnitsPerLevel shifts, everything else is
				// bit-identical (capacities never feed back into rates).
				resized := presetModels(t, p.arch, p.budget+len(models))
				warm, err := c.SolveJoint(resized, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if s := c.Stats(); s.WarmStarts == 0 {
					t.Fatalf("capacity-only change produced no warm starts: %+v", s)
				}
				freshCold, err := solvecache.New().SolveJoint(resized, cfg)
				if err != nil {
					t.Fatal(err)
				}
				assertSolutionsAgree(t, freshCold, warm, 1e-8, "warm vs cold")
			})
		}
	}
}

// TestCachePermutedModel: a model whose clients arrive in a different order
// is the same sub-model; the cache must hit and rebind the solution onto the
// permuted enumeration so that it matches that model's own cold solve.
func TestCachePermutedModel(t *testing.T) {
	clients := []ctmdp.Client{
		{BufferID: "a", Lambda: 1.2, Levels: 2, UnitsPerLevel: 3, LossWeight: 1},
		{BufferID: "b", Lambda: 0.4, Levels: 2, UnitsPerLevel: 2, LossWeight: 2, DownstreamFullProb: 0.2},
		{BufferID: "c", Lambda: 2.1, Levels: 1, UnitsPerLevel: 6, LossWeight: 1},
	}
	m1, err := ctmdp.NewModel("bus", 4, clients)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ctmdp.NewModel("bus", 4, []ctmdp.Client{clients[2], clients[0], clients[1]})
	if err != nil {
		t.Fatal(err)
	}

	c := solvecache.New()
	cfg := ctmdp.JointConfig{}
	if _, err := c.SolveJoint([]*ctmdp.Model{m1}, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := c.SolveJoint([]*ctmdp.Model{m2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("permuted model did not hit: %+v", s)
	}
	want, err := ctmdp.SolveJoint([]*ctmdp.Model{m2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSolutionsAgree(t, want, got, 1e-8, "permuted rebind vs cold")
	// The rebound policy must act on m2's own client indexing.
	probs, err := got.PerModel[0].Policy.Action([]int{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] < 0.99 {
		t.Errorf("policy must grant the only non-empty client, got %v", probs)
	}
}

// TestCacheCappedJoint covers the occupancy-cap linked program: cached at
// whole-program granularity, warm-seeding its refinement from the free
// solutions, agreeing with the uncached solver to 1e-8 on the optimum.
func TestCacheCappedJoint(t *testing.T) {
	for _, refine := range []bool{false, true} {
		models := presetModels(t, arch.Figure1, 40)
		free, err := ctmdp.SolveJoint(models, ctmdp.JointConfig{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := ctmdp.JointConfig{OccupancyCap: free.OccupancyUsed * 0.9, RefineStationary: refine}

		c := solvecache.New()
		// Free solves first, as the methodology loop does — they seed the
		// capped refinement.
		if _, err := c.SolveJoint(models, ctmdp.JointConfig{RefineStationary: refine}); err != nil {
			t.Fatal(err)
		}
		cold, err := c.SolveJoint(models, cfg)
		if err != nil {
			t.Fatal(err)
		}
		hit, err := c.SolveJoint(models, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s := c.Stats(); s.JointMisses != 1 || s.JointHits != 1 {
			t.Fatalf("refine=%v: joint counters off: %+v", refine, s)
		}
		assertSolutionsAgree(t, cold, hit, 1e-8, "capped cold vs hit")
		if cold.CapBinding != hit.CapBinding {
			t.Errorf("refine=%v: cap-binding flag not preserved", refine)
		}

		uncached, err := ctmdp.SolveJoint(models, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(uncached.TotalLossRate - cold.TotalLossRate); d > 1e-8 {
			t.Errorf("refine=%v: capped cached vs uncached objectives differ by %g", refine, d)
		}
	}
}

// TestCacheInfeasibleCap: infeasibility must surface as ctmdp.ErrInfeasible
// through the cache (core's retry ladder matches on it) and must not be
// cached as a solution.
func TestCacheInfeasibleCap(t *testing.T) {
	models := presetModels(t, arch.TwoBusAMBA, 24)
	c := solvecache.New()
	_, err := c.SolveJoint(models, ctmdp.JointConfig{OccupancyCap: 1e-9})
	if err == nil {
		t.Fatal("absurd cap accepted")
	}
	if !errors.Is(err, ctmdp.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible in chain, got %v", err)
	}
	if s := c.Stats(); s.JointEntries != 0 {
		t.Fatalf("infeasible solve was cached: %+v", s)
	}
}

// TestCacheConcurrent hammers one shared cache from the worker pool — the
// sweep engine's exact usage — under -race: mixed hits, warm starts and
// misses, with every answer agreeing with an uncached reference solve.
func TestCacheConcurrent(t *testing.T) {
	base := presetModels(t, arch.TwoBusAMBA, 24)
	resized := presetModels(t, arch.TwoBusAMBA, 30)
	pool := append(append([]*ctmdp.Model{}, base...), resized...)
	refs := make([]*ctmdp.JointSolution, len(pool))
	for i, m := range pool {
		ref, err := ctmdp.SolveJoint([]*ctmdp.Model{m}, ctmdp.JointConfig{})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}

	c := solvecache.New()
	const rounds = 64
	err := parallel.ForEach(rounds, 8, func(i int) error {
		k := i % len(pool)
		got, err := c.SolveJoint([]*ctmdp.Model{pool[k]}, ctmdp.JointConfig{})
		if err != nil {
			return err
		}
		if d := math.Abs(got.TotalLossRate - refs[k].TotalLossRate); d > 1e-8 {
			t.Errorf("round %d: objective off by %g", i, d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Hits+s.WarmStarts+s.Misses != rounds {
		t.Fatalf("counters don't add up to %d solves: %+v", rounds, s)
	}
	if s.Misses == 0 || s.Hits == 0 {
		t.Fatalf("expected a mix of hits and misses: %+v", s)
	}
}

// TestCacheBasisRoundTrip: a decoupled cache solve must hand back a Basis
// usable exactly like a direct ctmdp.SolveJoint's — for a single model, the
// currency of JointConfig.WarmBasis — even when the requesting model's
// client order differs from the canonical order the cache solved in.
func TestCacheBasisRoundTrip(t *testing.T) {
	models := presetModels(t, arch.TwoBusAMBA, 24)
	c := solvecache.New()
	for _, m := range models {
		free, err := c.SolveJoint([]*ctmdp.Model{m}, ctmdp.JointConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(free.Basis) != m.NumStates()+1 {
			t.Fatalf("model %q: basis has %d refs, want one per row (%d)",
				m.Bus, len(free.Basis), m.NumStates()+1)
		}
		capped := ctmdp.JointConfig{
			OccupancyCap: free.OccupancyUsed * 0.9,
			WarmBasis:    [][]lp.BasicRef{free.Basis},
			WarmX:        [][]float64{free.PerModel[0].X},
		}
		warm, err := ctmdp.SolveJoint([]*ctmdp.Model{m}, capped)
		if err != nil {
			t.Fatalf("model %q: warm capped: %v", m.Bus, err)
		}
		capped.WarmBasis, capped.WarmX = nil, nil
		cold, err := ctmdp.SolveJoint([]*ctmdp.Model{m}, capped)
		if err != nil {
			t.Fatalf("model %q: cold capped: %v", m.Bus, err)
		}
		if d := math.Abs(warm.TotalLossRate - cold.TotalLossRate); d > 1e-8 {
			t.Errorf("model %q: basis-seeded capped solve off by %g", m.Bus, d)
		}
	}
	// Multi-model solves skip the basis hand-back (a concatenated basis has
	// no JointConfig consumer, and the hot sweep path must not pay for it).
	joint, err := c.SolveJoint(models, ctmdp.JointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if joint.Basis != nil {
		t.Fatalf("multi-model cache solve returned a basis (%d refs)", len(joint.Basis))
	}
}

// TestNilCacheDelegates: a nil *Cache is the documented "caching off" value.
func TestNilCacheDelegates(t *testing.T) {
	models := presetModels(t, arch.TwoBusAMBA, 24)
	var c *solvecache.Cache
	got, err := c.SolveJoint(models, ctmdp.JointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctmdp.SolveJoint(models, ctmdp.JointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	assertSolutionsAgree(t, want, got, 0, "nil cache vs direct")
	if s := c.Stats(); s != (solvecache.Stats{}) {
		t.Fatalf("nil cache reported stats: %+v", s)
	}
}
