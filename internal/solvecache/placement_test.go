package solvecache

import (
	"bytes"
	"testing"
)

// TestPlacementTierRoundTrip pins the placement cache tier's contract:
// payload isolation (returned bytes are fresh copies), counters, and a nil
// receiver as a valid disabled cache.
func TestPlacementTierRoundTrip(t *testing.T) {
	c := New()
	meta := PlacementMeta{
		Budget: 56, CostBudget: 8, LatencyWeight: 0.1,
		Method: "hybrid", RefineTop: 3,
		Iterations: 2, Seeds: []int64{1, 2}, Horizon: 400, WarmUp: 50,
		TypeNames: []string{"lite", "std"}, TypeCosts: []float64{1, 2}, TypeDelays: []float64{0.5, 0.2},
	}
	key := PlacementFingerprint([]byte("arch-bytes"), meta)
	if _, ok := c.LookupPlacement(key); ok {
		t.Fatal("empty cache hit")
	}
	in := []byte(`{"frontier":[1,2,3]}`)
	c.PutPlacement(key, in)
	in[0] = 'X' // caller mutation after Put must not reach the store

	got, ok := c.LookupPlacement(key)
	if !ok || !bytes.Equal(got, []byte(`{"frontier":[1,2,3]}`)) {
		t.Fatalf("lookup got %q, ok=%v", got, ok)
	}
	got[0] = 'Y' // and mutating a lookup must not poison later lookups
	again, _ := c.LookupPlacement(key)
	if !bytes.Equal(again, []byte(`{"frontier":[1,2,3]}`)) {
		t.Fatalf("cached payload mutated through a reader: %q", again)
	}

	s := c.Stats()
	if s.PlacementHits != 2 || s.PlacementMisses != 1 || s.PlacementEntries != 1 {
		t.Fatalf("stats %+v, want 2 hits / 1 miss / 1 entry", s)
	}

	// Any metadata change is a different problem.
	meta2 := meta
	meta2.RefineTop = 4
	if _, ok := c.LookupPlacement(PlacementFingerprint([]byte("arch-bytes"), meta2)); ok {
		t.Fatal("metadata change aliased the cached placement")
	}

	var nilCache *Cache
	if _, ok := nilCache.LookupPlacement(key); ok {
		t.Fatal("nil cache hit")
	}
	nilCache.PutPlacement(key, in) // must not panic
}

// TestPlacementKeySpaceDisjoint: the backendPlacement tag must keep
// placement fingerprints disjoint from analytic ones even when the hashed
// content bytes line up — the same guarantee the analytic tag gives against
// exact keys.
func TestPlacementKeySpaceDisjoint(t *testing.T) {
	archBytes := []byte("same-arch")
	analytic := AnalyticFingerprint(archBytes, 56, 3)
	placement := PlacementFingerprint(archBytes, PlacementMeta{Budget: 56})
	if analytic == placement {
		t.Fatal("analytic and placement fingerprints collide")
	}
	c := New()
	c.PutAnalytic(analytic, &AnalyticSolution{Alloc: map[string]int{"a": 1}})
	if _, ok := c.LookupPlacement(placement); ok {
		t.Fatal("placement lookup answered from the analytic tier")
	}
}

// TestPlacementFingerprintSensitivity: every PlacementMeta field is
// identity — flipping any one of them must move the key.
func TestPlacementFingerprintSensitivity(t *testing.T) {
	base := PlacementMeta{
		Budget: 56, CostBudget: 8, LatencyWeight: 0.1,
		Method: "hybrid", RefineTop: 3,
		Iterations: 2, Seeds: []int64{1, 2}, Horizon: 400, WarmUp: 50,
		TypeNames: []string{"lite"}, TypeCosts: []float64{1}, TypeDelays: []float64{0.5},
	}
	arch := []byte("arch")
	k0 := PlacementFingerprint(arch, base)
	mutations := map[string]PlacementMeta{}
	m := base
	m.Budget++
	mutations["budget"] = m
	m = base
	m.CostBudget++
	mutations["costBudget"] = m
	m = base
	m.LatencyWeight = 0.2
	mutations["latencyWeight"] = m
	m = base
	m.Method = "exact"
	mutations["method"] = m
	m = base
	m.RefineTop++
	mutations["refineTop"] = m
	m = base
	m.Iterations++
	mutations["iterations"] = m
	m = base
	m.Seeds = []int64{1, 3}
	mutations["seeds"] = m
	m = base
	m.Horizon++
	mutations["horizon"] = m
	m = base
	m.WarmUp++
	mutations["warmUp"] = m
	m = base
	m.TypeNames = []string{"fast"}
	mutations["typeName"] = m
	m = base
	m.TypeCosts = []float64{2}
	mutations["typeCost"] = m
	m = base
	m.TypeDelays = []float64{0.1}
	mutations["typeDelay"] = m
	for field, mm := range mutations {
		if PlacementFingerprint(arch, mm) == k0 {
			t.Errorf("changing %s did not change the fingerprint", field)
		}
	}
	if PlacementFingerprint([]byte("other"), base) == k0 {
		t.Error("changing the architecture bytes did not change the fingerprint")
	}
}
