package solvecache

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Store is the byte-oriented, content-addressed key-value seam behind the
// cache's shared tiers. Keys are the fingerprints of DESIGN.md §4 — version-
// and backend-tagged hashes of a solve's mathematical content — so a Store
// never needs its own namespacing: two processes that compute the same key
// are asking for the same payload, and a payload is a pure function of its
// key (identical bits no matter which process stored it).
//
// Implementations must be safe for concurrent use and fail OPEN: a Get that
// cannot answer (dead peer, timeout, version drift) reports a miss, and a
// Put that cannot store is silently dropped — a Store failure can never fail
// a solve, only cost a recompute.
type Store interface {
	// Get fetches the payload stored under k. The second return is false on
	// any miss, including transport failures.
	Get(ctx context.Context, k Key) ([]byte, bool)
	// Put stores payload under k. Best-effort: implementations may drop it.
	Put(ctx context.Context, k Key, payload []byte)
}

// MemStore is the in-process Store: a mutex-guarded map. It backs the shared
// remote tier when mounted behind StoreHandler (the router's
// /v1/cache/ endpoint) and stands in for a remote peer in tests.
type MemStore struct {
	mu sync.RWMutex
	m  map[Key][]byte
}

// NewMemStore returns an empty in-process store.
func NewMemStore() *MemStore {
	return &MemStore{m: map[Key][]byte{}}
}

// Get returns a copy of the stored payload.
func (s *MemStore) Get(_ context.Context, k Key) ([]byte, bool) {
	s.mu.RLock()
	b, ok := s.m[k]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, true
}

// Put stores a copy of payload under k. Duplicate stores are benign:
// payloads are pure functions of their keys, so last-write-wins never
// changes what a reader sees.
func (s *MemStore) Put(_ context.Context, k Key, payload []byte) {
	if len(payload) == 0 {
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	s.mu.Lock()
	s.m[k] = cp
	s.mu.Unlock()
}

// Len reports the number of stored payloads (for stats and tests).
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// versionHeader tags every sidecar-protocol payload with the fingerprint
// serialisation version. The version is already hashed into every key, so a
// peer on a different version computes disjoint keys and can never alias;
// the header is the belt-and-braces check that also catches a proxy or
// operator wiring two incompatible fleets to one store.
const versionHeader = "X-Socbuf-Cache-Version"

// StoreHandler serves the sidecar cache protocol over any Store:
//
//	GET  /<64-hex-key>  → 200 + payload (version-tagged) | 404
//	PUT  /<64-hex-key>  → 204 (version header must match; 400 otherwise)
//
// Mount it under a prefix with http.StripPrefix (socbufrouter serves it at
// /v1/cache/). Payload bodies are capped at maxStorePayload.
func StoreHandler(s Store) http.Handler {
	return &storeHandler{s: s}
}

// maxStorePayload bounds one sidecar payload (4 MiB — the largest realistic
// entry, a big placement result, is tens of KB).
const maxStorePayload = 4 << 20

type storeHandler struct {
	s Store
}

func (h *storeHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	k, err := parseStoreKey(r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		b, ok := h.s.Get(r.Context(), k)
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		w.Header().Set(versionHeader, strconv.Itoa(version))
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(b)
	case http.MethodPut:
		if v := r.Header.Get(versionHeader); v != strconv.Itoa(version) {
			http.Error(w, fmt.Sprintf("cache version %q, want %d", v, version), http.StatusBadRequest)
			return
		}
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStorePayload))
		if err != nil {
			http.Error(w, "payload too large or unreadable", http.StatusBadRequest)
			return
		}
		if len(b) == 0 {
			http.Error(w, "empty payload", http.StatusBadRequest)
			return
		}
		h.s.Put(r.Context(), k, b)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// parseStoreKey extracts the hex key from the request path (the last
// segment, so the handler works both bare and behind StripPrefix).
func parseStoreKey(path string) (Key, error) {
	seg := strings.TrimPrefix(path, "/")
	if i := strings.LastIndexByte(seg, '/'); i >= 0 {
		seg = seg[i+1:]
	}
	var k Key
	if len(seg) != 2*len(k) {
		return k, fmt.Errorf("key %q: want %d hex chars", seg, 2*len(k))
	}
	for i := 0; i < len(k); i++ {
		hi, ok1 := unhex(seg[2*i])
		lo, ok2 := unhex(seg[2*i+1])
		if !ok1 || !ok2 {
			return k, fmt.Errorf("key %q: invalid hex", seg)
		}
		k[i] = hi<<4 | lo
	}
	return k, nil
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// RemoteOptions tunes a RemoteStore. The zero value is usable.
type RemoteOptions struct {
	// Timeout bounds each Get round-trip (default 250ms). A remote answer
	// that takes longer than a local recompute is not worth waiting for.
	Timeout time.Duration
	// PutQueue bounds the async write-behind queue (default 256). Puts
	// beyond the bound are dropped, never blocked on.
	PutQueue int
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker (default 5): once open, Gets answer miss locally
	// without touching the network until BreakerCooldown has passed.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker skips the peer before
	// probing it again (default 2s).
	BreakerCooldown time.Duration
	// Client overrides the HTTP client (tests). Its Timeout is not used;
	// per-request contexts carry the deadline.
	Client *http.Client
}

// RemoteStore is the peer/sidecar implementation of Store: GET/PUT by
// fingerprint against an HTTP endpoint speaking the StoreHandler protocol
// (e.g. socbufrouter's /v1/cache). Every failure path degrades to a miss —
// strict per-op timeouts, a consecutive-failure circuit breaker, and
// write-behind Puts on a bounded queue — so a dead or slow peer can never
// fail (or indefinitely stall) a solve.
type RemoteStore struct {
	base   string
	client *http.Client
	opts   RemoteOptions

	puts   chan remotePut
	done   chan struct{}
	closed sync.Once

	fails    atomic.Int64 // consecutive transport failures
	openedAt atomic.Int64 // unix-nano when the breaker opened (0 = closed)

	gets, hits, errs, putDrops atomic.Int64
}

type remotePut struct {
	key     Key
	payload []byte
}

// NewRemoteStore builds a store speaking the sidecar protocol against base
// (e.g. "http://127.0.0.1:8360/v1/cache"). Call Close when done to stop the
// write-behind worker.
func NewRemoteStore(base string, opts RemoteOptions) *RemoteStore {
	if opts.Timeout <= 0 {
		opts.Timeout = 250 * time.Millisecond
	}
	if opts.PutQueue <= 0 {
		opts.PutQueue = 256
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 2 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     60 * time.Second,
		}}
	}
	s := &RemoteStore{
		base:   strings.TrimRight(base, "/"),
		client: client,
		opts:   opts,
		puts:   make(chan remotePut, opts.PutQueue),
		done:   make(chan struct{}),
	}
	go s.putLoop()
	return s
}

// Close stops the write-behind worker. Queued puts are dropped; in-flight
// Gets finish on their own deadlines. Idempotent.
func (s *RemoteStore) Close() {
	s.closed.Do(func() { close(s.done) })
}

// url renders the key's endpoint.
func (s *RemoteStore) url(k Key) string {
	const hexdigits = "0123456789abcdef"
	b := make([]byte, 0, len(s.base)+1+2*len(k))
	b = append(b, s.base...)
	b = append(b, '/')
	for _, c := range k {
		b = append(b, hexdigits[c>>4], hexdigits[c&0xf])
	}
	return string(b)
}

// tripped reports whether the breaker currently short-circuits the peer,
// re-arming a probe once the cooldown has passed.
func (s *RemoteStore) tripped() bool {
	opened := s.openedAt.Load()
	if opened == 0 {
		return false
	}
	if time.Since(time.Unix(0, opened)) < s.opts.BreakerCooldown {
		return true
	}
	// Cooldown over: allow one probe through (the next failure re-opens).
	s.openedAt.CompareAndSwap(opened, 0)
	return false
}

// fail records one transport failure, opening the breaker at the threshold.
func (s *RemoteStore) fail() {
	s.errs.Add(1)
	if s.fails.Add(1) >= int64(s.opts.BreakerThreshold) {
		s.openedAt.CompareAndSwap(0, time.Now().UnixNano())
		s.fails.Store(0)
	}
}

// ok records one successful round-trip (closes the breaker).
func (s *RemoteStore) ok() {
	s.fails.Store(0)
	s.openedAt.Store(0)
}

// Get fetches k from the peer. Any failure — transport, timeout, non-200,
// version drift, open breaker — is a miss.
func (s *RemoteStore) Get(ctx context.Context, k Key) ([]byte, bool) {
	if s == nil || s.tripped() {
		return nil, false
	}
	s.gets.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	rctx, cancel := context.WithTimeout(ctx, s.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, s.url(k), nil)
	if err != nil {
		s.fail()
		return nil, false
	}
	resp, err := s.client.Do(req)
	if err != nil {
		s.fail()
		return nil, false
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		s.ok() // the peer answered; a miss is a healthy response
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		s.fail()
		return nil, false
	}
	if v := resp.Header.Get(versionHeader); v != strconv.Itoa(version) {
		// A peer serving another fingerprint version: its payloads describe
		// different serialisation layouts, so treat everything as a miss.
		s.fail()
		return nil, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxStorePayload+1))
	if err != nil || len(b) == 0 || len(b) > maxStorePayload {
		s.fail()
		return nil, false
	}
	s.ok()
	s.hits.Add(1)
	return b, true
}

// Put enqueues a write-behind store of payload under k. It never blocks:
// when the queue is full the put is dropped (and counted), trading
// completeness of the shared tier for a hot path free of remote latency.
func (s *RemoteStore) Put(_ context.Context, k Key, payload []byte) {
	if s == nil || len(payload) == 0 || len(payload) > maxStorePayload || s.tripped() {
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	select {
	case s.puts <- remotePut{key: k, payload: cp}:
	default:
		s.putDrops.Add(1)
	}
}

// putLoop drains the write-behind queue, one synchronous PUT at a time.
func (s *RemoteStore) putLoop() {
	for {
		select {
		case <-s.done:
			return
		case p := <-s.puts:
			s.putOne(p)
		}
	}
}

func (s *RemoteStore) putOne(p remotePut) {
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, s.url(p.key), strings.NewReader(string(p.payload)))
	if err != nil {
		s.fail()
		return
	}
	req.Header.Set(versionHeader, strconv.Itoa(version))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.client.Do(req)
	if err != nil {
		s.fail()
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		s.fail()
		return
	}
	s.ok()
}

// RemoteStoreStats is a point-in-time snapshot of a RemoteStore's transport
// counters (distinct from the Cache's remote-tier hit accounting, which
// counts payloads actually adopted).
type RemoteStoreStats struct {
	Gets, Hits, Errors, PutDrops int64
	BreakerOpen                  bool
}

// Stats snapshots the transport counters.
func (s *RemoteStore) Stats() RemoteStoreStats {
	if s == nil {
		return RemoteStoreStats{}
	}
	return RemoteStoreStats{
		Gets:        s.gets.Load(),
		Hits:        s.hits.Load(),
		Errors:      s.errs.Load(),
		PutDrops:    s.putDrops.Load(),
		BreakerOpen: s.openedAt.Load() != 0,
	}
}
