package solvecache

import (
	"errors"
	"fmt"

	"socbuf/internal/ctmdp"
	"socbuf/internal/lp"
)

// SolveJoint is the cache-aware drop-in for ctmdp.SolveJoint. A nil receiver
// delegates straight to the cold solver, so call sites can thread an
// optional cache without branching.
//
// Cap-free (and Sequential) programs decouple into independent sub-model
// solves, which is where the fleet-wide reuse lives: each model is answered
// from the cache (exact hit), from a structural sibling (warm start — only
// capacities changed), or by a cold solve of its canonicalised clone that
// then populates the cache. Capped joint programs are cached at
// whole-program granularity under JointFingerprint; their stationary
// refinement is warm-seeded from the cached free solutions when available.
//
// Solutions returned to the caller are always freshly allocated and bound to
// the requesting models (callers mutate solutions — RefineStationary — and
// read Model.Bus downstream), never aliases of cache memory. Single-model
// cap-free solves return a Basis rebound onto the requesting model — the
// currency of JointConfig.WarmBasis, exactly as a direct single-model
// ctmdp.SolveJoint would hand back; multi-model and capped solves return a
// nil Basis (a concatenated basis has no JointConfig consumer, and the
// free→capped hand-over the methodology needs happens inside the cache).
// Caller-supplied cfg.WarmX/WarmBasis seeds are superseded by the cache's
// own seeding and ignored — a cached answer beats any warm start.
func (c *Cache) SolveJoint(models []*ctmdp.Model, cfg ctmdp.JointConfig) (*ctmdp.JointSolution, error) {
	if c == nil {
		return ctmdp.SolveJoint(models, cfg)
	}
	if len(models) == 0 || (cfg.Sequential && cfg.OccupancyCap > 0) {
		// Delegate so the canonical configuration errors surface unchanged.
		return ctmdp.SolveJoint(models, cfg)
	}
	opts := optionsOf(cfg)
	if cfg.OccupancyCap > 0 {
		return c.solveCapped(models, cfg, opts)
	}

	// Basis hand-back is a single-model affair (JointConfig.WarmBasis wants
	// per-model bases, so a concatenated multi-model basis has no consumer);
	// skipping it for multi-model calls keeps the sweep hot path — where the
	// free solves arrive as multi-model batches — free of the extra
	// rebinding pass.
	wantBasis := len(models) == 1

	out := &ctmdp.JointSolution{}
	for _, m := range models {
		ms, rb, iters, err := c.solveOne(m, opts, wantBasis)
		if err != nil {
			return nil, fmt.Errorf("solvecache: model %q: %w", m.Bus, err)
		}
		out.PerModel = append(out.PerModel, ms)
		out.TotalLossRate += ms.LossRate
		out.Iters += iters
		for s, p := range ms.StateProb {
			out.OccupancyUsed += m.OccupancyUnits(s) * p
		}
		out.Basis = rb
	}
	return out, nil
}

// solveOne answers one decoupled sub-model solve, returning the rebound
// solution and — when wantBasis is set — the entry's basis rebound onto the
// requesting model. The returned iteration count is the simplex pivots
// actually performed (zero for hits and warm starts).
func (c *Cache) solveOne(m *ctmdp.Model, opts SolveOptions, wantBasis bool) (*ctmdp.ModelSolution, []lp.BasicRef, int, error) {
	order := canonicalOrder(m)
	full := Fingerprint(m, opts)
	structural := StructuralFingerprint(m, opts)
	e, exact := c.lookup(full, structural)
	iters := 0
	if e != nil && e.matches(m, order) {
		if exact {
			c.hits.Add(1)
		} else {
			c.warm.Add(1)
			// Promote the sibling under the new full key: future solves of
			// this exact model are plain hits.
			c.put(full, structural, e)
		}
	} else if re := c.remoteEntryGet(full); re != nil && re.matches(m, order) {
		// A peer solved this exact fingerprint already: adopt its payload as a
		// plain hit and keep a local copy. The payload is a pure function of
		// the key (solveCold solves the canonical clone), so the adopted
		// numbers are bit-identical to what a local cold solve would produce.
		c.hits.Add(1)
		c.put(full, structural, re)
		e = re
	} else {
		c.misses.Add(1)
		var err error
		if e, err = c.solveCold(m, order, opts); err != nil {
			return nil, nil, 0, err
		}
		c.put(full, structural, e)
		iters = e.iters
		c.remoteEntryPut(full, e)
	}
	ms, err := e.rebind(m, order)
	if err != nil {
		return nil, nil, 0, err
	}
	var rb []lp.BasicRef
	if wantBasis {
		if rb, err = e.rebindBasis(m, order); err != nil {
			return nil, nil, 0, err
		}
	}
	return ms, rb, iters, nil
}

// solveCold solves the canonicalised clone of m and wraps it as a cache
// entry. Solving the canonical clone — not m itself — is what makes the
// stored payload a pure function of the fingerprint: every requester of this
// key gets bit-identical numbers regardless of which worker solved first.
func (c *Cache) solveCold(m *ctmdp.Model, order []int, opts SolveOptions) (*entry, error) {
	cm, err := canonicalModel(m, order)
	if err != nil {
		return nil, err
	}
	st := opts.Stationary
	st.Warm = nil // priors are hints, never part of a cached payload's identity
	sol, err := ctmdp.SolveJoint([]*ctmdp.Model{cm}, ctmdp.JointConfig{
		RefineStationary: opts.Refine,
		Stationary:       st,
	})
	if err != nil {
		return nil, err
	}
	return &entry{model: cm, sol: sol.PerModel[0], iters: sol.Iters, basis: sol.Basis}, nil
}

// solveCapped handles the occupancy-cap linked program. The cap couples the
// blocks, so caching happens at whole-program granularity; per-model entries
// of a capped solve never leak into the decoupled maps (a capped optimum is
// a different payload than the free one).
func (c *Cache) solveCapped(models []*ctmdp.Model, cfg ctmdp.JointConfig, opts SolveOptions) (*ctmdp.JointSolution, error) {
	key := JointFingerprint(models, cfg.OccupancyCap, opts)
	orders := make([][]int, len(models))
	for i, m := range models {
		orders[i] = canonicalOrder(m)
	}

	c.mu.Lock()
	je := c.joint[key]
	c.mu.Unlock()
	if je != nil && len(je.entries) == len(models) {
		ok := true
		for i, m := range models {
			if !je.entries[i].matches(m, orders[i]) {
				ok = false
				break
			}
		}
		if ok {
			c.jointHits.Add(1)
			return je.assemble(models, orders)
		}
	}

	c.jointMiss.Add(1)
	cms := make([]*ctmdp.Model, len(models))
	for i, m := range models {
		cm, err := canonicalModel(m, orders[i])
		if err != nil {
			return nil, fmt.Errorf("solvecache: model %q: %w", m.Bus, err)
		}
		cms[i] = cm
	}
	// Solve the canonical joint program with refinement deferred, so the
	// refinement can be warm-seeded from the cached free solutions below.
	// The LP itself is seeded from the cached cap-free optima: the balance
	// blocks are unchanged by the cap, so handing over the free solves'
	// final bases (ctmdp.JointConfig.WarmBasis) skips simplex phase 1 with
	// the reduced costs already optimal, leaving only the new cap row to
	// repair by dual pivots. In the methodology loop the free solves always
	// precede the capped one, so the seed is deterministically available
	// there.
	inner := cfg
	inner.RefineStationary = false
	inner.Stationary = ctmdp.StationaryOptions{}
	warmBasis := make([][]lp.BasicRef, len(models))
	seeded := 0
	for i, m := range models {
		if e := c.freeEntry(m, opts); e != nil && e.basis != nil {
			warmBasis[i] = e.basis
			seeded++
		}
	}
	if seeded == len(models) {
		inner.WarmBasis = warmBasis
	}
	var sol *ctmdp.JointSolution
	var err error
	if c.deltaEnabled {
		sol, err = c.solveDelta(cms, cfg, inner, opts)
	}
	if sol == nil && err == nil {
		sol, err = ctmdp.SolveJoint(cms, inner)
	}
	if err != nil {
		// Includes ctmdp.ErrInfeasible untouched in the chain: the caller's
		// cap retry ladder matches with errors.Is.
		return nil, err
	}
	if opts.Refine {
		sol.TotalLossRate, sol.OccupancyUsed = 0, 0
		for i, ms := range sol.PerModel {
			st := opts.Stationary
			st.Warm = nil
			if e := c.freeEntry(models[i], opts); e != nil {
				st.Warm = e.sol.StateProb
			}
			if _, err := ms.RefineStationary(st); err != nil {
				return nil, fmt.Errorf("solvecache: model %q: %w", models[i].Bus, err)
			}
			sol.TotalLossRate += ms.LossRate
			for s, p := range ms.StateProb {
				sol.OccupancyUsed += ms.Model.OccupancyUnits(s) * p
			}
		}
		sol.CapBinding = sol.OccupancyUsed >= cfg.OccupancyCap*(1-1e-6)
	}

	je = &jointEntry{
		totalLoss:  sol.TotalLossRate,
		occUsed:    sol.OccupancyUsed,
		capBinding: sol.CapBinding,
	}
	for i := range cms {
		je.entries = append(je.entries, &entry{model: cms[i], sol: sol.PerModel[i]})
	}
	c.mu.Lock()
	c.joint[key] = je
	c.mu.Unlock()
	out, err := je.assemble(models, orders)
	if err != nil {
		return nil, err
	}
	out.Iters = sol.Iters
	return out, nil
}

// solveDelta answers a capped joint miss through the delta tier: the first
// miss of a structural family constructs and retains a ctmdp.CappedResolver
// over the canonical clones; every later miss of the same family — a sibling
// program differing only in unit scalings and/or cap — patches the retained
// tableau instead of solving afresh. Returns (nil, nil) to decline (tier
// full, or the patch path errored for a non-infeasibility reason), in which
// case the caller runs the ordinary solve; ctmdp.ErrInfeasible propagates
// unwrapped so the cap retry ladder sees it.
func (c *Cache) solveDelta(cms []*ctmdp.Model, cfg, inner ctmdp.JointConfig, opts SolveOptions) (*ctmdp.JointSolution, error) {
	key := JointStructuralFingerprint(cms, opts)
	c.mu.Lock()
	de := c.delta[key]
	if de == nil && len(c.delta) < maxDeltaEntries {
		de = &deltaEntry{}
		c.delta[key] = de
	}
	c.mu.Unlock()
	if de == nil {
		return nil, nil // tier full: solve without delta reuse
	}

	de.mu.Lock()
	defer de.mu.Unlock()
	if de.res == nil {
		cr, sol, err := ctmdp.NewCappedResolver(cms, inner)
		if cr != nil {
			de.res = cr // retained even when the first cap was infeasible
		}
		if err != nil {
			if errors.Is(err, ctmdp.ErrInfeasible) {
				return nil, err
			}
			c.deltaShrug.Add(1)
			return nil, nil
		}
		return sol, nil // the construction itself is an ordinary cold solve
	}
	sol, err := de.res.Resolve(cms, cfg.OccupancyCap)
	if err != nil {
		if errors.Is(err, ctmdp.ErrInfeasible) {
			// The fast path answered: infeasibility at this cap is a result,
			// and the resolver stays primed for the ladder's next cap.
			c.deltaHit.Add(1)
			return nil, err
		}
		c.deltaShrug.Add(1)
		return nil, nil
	}
	c.deltaHit.Add(1)
	return sol, nil
}

// assemble rebinds a cached joint entry onto the requesting models.
func (je *jointEntry) assemble(models []*ctmdp.Model, orders [][]int) (*ctmdp.JointSolution, error) {
	out := &ctmdp.JointSolution{
		TotalLossRate: je.totalLoss,
		OccupancyUsed: je.occUsed,
		CapBinding:    je.capBinding,
	}
	for i, m := range models {
		ms, err := je.entries[i].rebind(m, orders[i])
		if err != nil {
			return nil, fmt.Errorf("solvecache: model %q: %w", m.Bus, err)
		}
		out.PerModel = append(out.PerModel, ms)
	}
	return out, nil
}

// freeEntry returns the cached cap-free solution of m (exact or structural
// sibling — the cap-free payload is capacity-invariant), if present: the
// warm-start seed for a capped solve's LP and stationary refinement. In the
// methodology loop the free boundary solves always run (and cache) before
// the capped final solve, so the seed is deterministic there; standalone
// capped solves on a cold cache simply solve unseeded. The entry's slices
// are read-only here: the LP copies its Warm candidate and the stationary
// solvers copy their Init prior.
func (c *Cache) freeEntry(m *ctmdp.Model, opts SolveOptions) *entry {
	e, _ := c.lookup(Fingerprint(m, opts), StructuralFingerprint(m, opts))
	return e
}
