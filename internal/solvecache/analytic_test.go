package solvecache

import (
	"testing"

	"socbuf/internal/ctmdp"
)

// TestAnalyticTierRoundTrip pins the analytic cache tier's contract:
// lookup/put round-trips, payload isolation (returned allocations are
// copies in both directions), and the hit/miss counters.
func TestAnalyticTierRoundTrip(t *testing.T) {
	c := New()
	key := AnalyticFingerprint([]byte("arch-bytes"), 56, 3)

	if _, ok := c.LookupAnalytic(key); ok {
		t.Fatal("empty cache hit")
	}
	in := &AnalyticSolution{Alloc: map[string]int{"a": 2, "b": 3}, LossRate: 1.5}
	c.PutAnalytic(key, in)
	in.Alloc["a"] = 99 // the stored payload must be a copy

	got, ok := c.LookupAnalytic(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if got.Alloc["a"] != 2 || got.Alloc["b"] != 3 || got.LossRate != 1.5 {
		t.Fatalf("payload corrupted: %+v", got)
	}
	got.Alloc["b"] = 77 // the returned payload must be a copy too
	again, _ := c.LookupAnalytic(key)
	if again.Alloc["b"] != 3 {
		t.Fatalf("lookup aliased cache memory: %+v", again)
	}

	s := c.Stats()
	if s.AnalyticHits != 2 || s.AnalyticMisses != 1 || s.AnalyticEntries != 1 {
		t.Fatalf("counters = %+v, want 2 hits / 1 miss / 1 entry", s)
	}
	// Different budget → different key: the content is part of the identity.
	if _, ok := c.LookupAnalytic(AnalyticFingerprint([]byte("arch-bytes"), 64, 3)); ok {
		t.Fatal("budget not part of the analytic key")
	}
}

// TestAnalyticTierNilCache: a nil cache is the valid "caching disabled"
// receiver, mirroring SolveJoint's contract.
func TestAnalyticTierNilCache(t *testing.T) {
	var c *Cache
	if _, ok := c.LookupAnalytic(Key{}); ok {
		t.Fatal("nil cache hit")
	}
	c.PutAnalytic(Key{}, &AnalyticSolution{}) // must not panic
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats %+v", s)
	}
}

// TestBackendKeySpacesDisjoint is the rebinding-isolation gate of the
// backend-qualified fingerprint contract: the analytic tier and the exact
// tiers key disjoint spaces, so storing an analytic sizing can never make
// an exact lookup hit (and vice versa) — even for the same underlying
// system. The tag is structural (serialised into the hash domain), so this
// test exercises the seam rather than proving the cryptographic claim.
func TestBackendKeySpacesDisjoint(t *testing.T) {
	m, err := ctmdp.NewModel("bus", 2, []ctmdp.Client{{
		BufferID: "b", Lambda: 1, Levels: 2, UnitsPerLevel: 1, LossWeight: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	// Populate the analytic tier, then solve the exact path for the same
	// system: the exact solve must MISS (cold) — the analytic entry is
	// invisible to it.
	c.PutAnalytic(AnalyticFingerprint([]byte("same-system"), 4, 3), &AnalyticSolution{
		Alloc: map[string]int{"b": 4}, LossRate: 0.25,
	})
	if _, err := c.SolveJoint([]*ctmdp.Model{m}, ctmdp.JointConfig{}); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("exact solve consulted a foreign tier: %+v", s)
	}
	// And the exact entry is invisible to the analytic tier.
	if _, ok := c.LookupAnalytic(Fingerprint(m, SolveOptions{})); ok {
		t.Fatal("exact fingerprint resolved in the analytic tier")
	}
}
