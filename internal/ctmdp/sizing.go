package ctmdp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Translator selects how solved occupation measures become physical buffer
// capacities. GreedyTail is the default; the others exist for the ablation
// called out in DESIGN.md §4.
type Translator int

// Translation methods.
const (
	// TranslateGreedyTail equalises marginal loss: every unit of budget goes
	// to the buffer whose loss rate drops most, modelling each buffer's
	// occupancy tail as geometric with the ratio observed under the optimal
	// policy. Greedy is exact here because the marginals λ(1−r)r^K decrease
	// in K.
	TranslateGreedyTail Translator = iota
	// TranslateQuantile sizes buffers proportionally to their (1−ε)
	// occupancy quantile under the optimal policy.
	TranslateQuantile
	// TranslateMeanOccupancy sizes buffers proportionally to their mean
	// occupancy — the naive translation the ablation compares against.
	TranslateMeanOccupancy
)

// BufferDemand is the per-physical-buffer summary extracted from a solved
// model, the input to Translate.
type BufferDemand struct {
	BufferID  string
	Lambda    float64 // arrival rate
	TailRatio float64 // effective geometric tail ratio in (0,1)
	Quantile  float64 // (1−ε) occupancy quantile, physical units
	MeanUnits float64 // mean occupancy, physical units
}

const (
	minTail = 0.02
	maxTail = 0.98
)

// DemandsOptions tunes DemandsOpt.
type DemandsOptions struct {
	// Eps is the quantile tail mass (e.g. 0.05).
	Eps float64
	// Refine recomputes each solution's stationary distribution from its
	// policy-induced chain before extracting demands, auto-selecting the
	// dense-LU or sparse-iterative solver by state-space size. The demands
	// then come from the refined occupancy distributions.
	Refine bool
	// Stationary tunes the refinement solves; the zero value auto-selects.
	Stationary StationaryOptions
}

// DemandsOpt is Demands with per-call stationary refinement. It mutates the
// solutions in place when Refine is set (refinement is idempotent).
func DemandsOpt(sols []*ModelSolution, o DemandsOptions) ([]BufferDemand, error) {
	if o.Refine {
		for _, ms := range sols {
			if _, err := ms.RefineStationary(o.Stationary); err != nil {
				return nil, fmt.Errorf("ctmdp: refine %q: %w", ms.Model.Bus, err)
			}
		}
	}
	return Demands(sols, o.Eps)
}

// Demands expands the clients of solved models into per-physical-buffer
// demands, splitting aggregate clients across their members in proportion to
// member rates. eps is the quantile tail mass (e.g. 0.05).
func Demands(sols []*ModelSolution, eps float64) ([]BufferDemand, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("ctmdp: quantile eps %v outside (0,1)", eps)
	}
	var out []BufferDemand
	seen := map[string]string{} // buffer ID -> bus that claimed it
	for _, ms := range sols {
		for c, cl := range ms.Model.Clients {
			dist := ms.OccupancyDistribution(c)
			// Effective utilisation ρ_eff = λ·P(busy)/throughput: the
			// arrival rate over the service rate the client actually
			// receives while non-empty. For an uncontended M/M/1/K client
			// this recovers ρ = λ/μ exactly; under contention it reflects
			// the grant share the optimal policy gives the client.
			th := ms.Throughput(c)
			pBusy := 1 - dist[0]
			var tail float64
			switch {
			case cl.Lambda <= 0:
				tail = minTail
			case th <= 1e-9:
				tail = maxTail
			default:
				tail = cl.Lambda * pBusy / th
			}
			tail = math.Min(maxTail, math.Max(minTail, tail))

			// Quantile in levels → physical units.
			var cum float64
			q := cl.Levels
			for k, p := range dist {
				cum += p
				if cum >= 1-eps {
					q = k
					break
				}
			}
			quantUnits := float64(q) * cl.UnitsPerLevel
			meanUnits := ms.MeanLevel(c) * cl.UnitsPerLevel

			members := cl.Members
			memberLambda := cl.MemberLambda
			if len(members) == 0 {
				members = []string{cl.BufferID}
				memberLambda = []float64{cl.Lambda}
			}
			var lamSum float64
			for _, l := range memberLambda {
				lamSum += l
			}
			for i, id := range members {
				if prev, ok := seen[id]; ok {
					return nil, fmt.Errorf("ctmdp: bus %q: buffer %q already claimed by bus %q", ms.Model.Bus, id, prev)
				}
				seen[id] = ms.Model.Bus
				share := 1.0 / float64(len(members))
				if lamSum > 0 {
					share = memberLambda[i] / lamSum
				}
				out = append(out, BufferDemand{
					BufferID:  id,
					Lambda:    memberLambda[i],
					TailRatio: tail,
					Quantile:  quantUnits * share,
					MeanUnits: meanUnits * share,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BufferID < out[j].BufferID })
	return out, nil
}

// Translate converts demands into an integer allocation that spends the
// budget exactly, with a one-unit floor per buffer.
func Translate(demands []BufferDemand, budget int, how Translator) (map[string]int, error) {
	if len(demands) == 0 {
		return nil, errors.New("ctmdp: no demands")
	}
	if budget < len(demands) {
		return nil, fmt.Errorf("ctmdp: budget %d below one unit per buffer (%d buffers)", budget, len(demands))
	}
	switch how {
	case TranslateGreedyTail:
		return translateGreedy(demands, budget), nil
	case TranslateQuantile:
		scores := make([]float64, len(demands))
		for i, d := range demands {
			scores[i] = d.Quantile
		}
		return apportion(demands, scores, budget), nil
	case TranslateMeanOccupancy:
		scores := make([]float64, len(demands))
		for i, d := range demands {
			scores[i] = d.MeanUnits
		}
		return apportion(demands, scores, budget), nil
	default:
		return nil, fmt.Errorf("ctmdp: unknown translator %d", how)
	}
}

// translateGreedy allocates unit by unit to the buffer with the highest
// marginal loss reduction λ(1−r)r^K.
func translateGreedy(demands []BufferDemand, budget int) map[string]int {
	alloc := make(map[string]int, len(demands))
	gain := make([]float64, len(demands))
	for i, d := range demands {
		alloc[d.BufferID] = 1
		gain[i] = d.Lambda * (1 - d.TailRatio) * d.TailRatio // marginal of the 2nd unit
	}
	for left := budget - len(demands); left > 0; left-- {
		best := 0
		for i := 1; i < len(demands); i++ {
			if gain[i] > gain[best] {
				best = i
			}
		}
		alloc[demands[best].BufferID]++
		gain[best] *= demands[best].TailRatio
	}
	return alloc
}

// apportion distributes budget with a one-unit floor, remaining units split
// by largest remainder over the scores.
func apportion(demands []BufferDemand, scores []float64, budget int) map[string]int {
	alloc := make(map[string]int, len(demands))
	var total float64
	for _, s := range scores {
		total += s
	}
	remaining := budget - len(demands)
	if total <= 0 {
		// Degenerate: spread evenly.
		for i, d := range demands {
			alloc[d.BufferID] = 1 + remaining/len(demands)
			if i < remaining%len(demands) {
				alloc[d.BufferID]++
			}
		}
		return alloc
	}
	type frac struct {
		idx int
		f   float64
	}
	fracs := make([]frac, len(demands))
	used := 0
	for i, d := range demands {
		exact := float64(remaining) * scores[i] / total
		whole := int(exact)
		alloc[d.BufferID] = 1 + whole
		used += whole
		fracs[i] = frac{idx: i, f: exact - float64(whole)}
	}
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].f != fracs[j].f {
			return fracs[i].f > fracs[j].f
		}
		return demands[fracs[i].idx].BufferID < demands[fracs[j].idx].BufferID
	})
	for i := 0; i < remaining-used; i++ {
		alloc[demands[fracs[i%len(fracs)].idx].BufferID]++
	}
	return alloc
}
