package ctmdp

import (
	"math"
	"strings"
	"testing"
)

func solvedTwoClient(t *testing.T, cfg JointConfig) *ModelSolution {
	t.Helper()
	m := mustModel(t, "b", 4.5, []Client{
		{BufferID: "x", Lambda: 2.0, Levels: 2, UnitsPerLevel: 5, LossWeight: 1},
		{BufferID: "y", Lambda: 2.0, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
	})
	return mustSolve(t, []*Model{m}, cfg).PerModel[0]
}

func TestPolicyRowsAreDistributions(t *testing.T) {
	ms := solvedTwoClient(t, JointConfig{})
	p := ms.Policy
	for s := 0; s < ms.Model.NumStates(); s++ {
		if !p.Visited[s] {
			continue
		}
		var sum float64
		for _, pr := range p.ActionProb[s] {
			if pr < -1e-9 {
				t.Fatalf("negative action probability at state %d", s)
			}
			sum += pr
		}
		// The all-empty state is idle: zero mass on grants.
		allEmpty := true
		for c := range ms.Model.Clients {
			if ms.Model.Level(s, c) > 0 {
				allEmpty = false
			}
		}
		if allEmpty {
			if sum > 1e-9 {
				t.Fatalf("idle state has grant mass %v", sum)
			}
			continue
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("action probabilities at state %d sum to %v", s, sum)
		}
	}
}

func TestPolicyNeverGrantsEmptyClient(t *testing.T) {
	ms := solvedTwoClient(t, JointConfig{})
	p := ms.Policy
	m := ms.Model
	for s := 0; s < m.NumStates(); s++ {
		for c, pr := range p.ActionProb[s] {
			if pr > 1e-9 && m.Level(s, c) == 0 {
				t.Fatalf("state %d grants empty client %d with prob %v", s, c, pr)
			}
		}
	}
}

func TestPolicyActionFallback(t *testing.T) {
	ms := solvedTwoClient(t, JointConfig{})
	p := ms.Policy
	// Clamping: levels beyond the cap clamp to the cap.
	dist, err := p.Action([]int{99, 0})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, pr := range dist {
		sum += pr
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("clamped action distribution sums to %v", sum)
	}
	// Errors.
	if _, err := p.Action([]int{1}); err == nil {
		t.Fatal("wrong level vector length accepted")
	}
	if _, err := p.Action([]int{-1, 0}); err == nil {
		t.Fatal("negative level accepted")
	}
}

func TestPolicyActionUnvisitedLongestQueue(t *testing.T) {
	// Build a tiny model and a policy with no visited states by hand.
	m := mustModel(t, "b", 1, []Client{
		{BufferID: "x", Lambda: 1, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "y", Lambda: 1, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
	})
	p := extractPolicy(m, make([]float64, m.NumVars())) // all-zero measure
	dist, err := p.Action([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if dist[1] != 1 || dist[0] != 0 {
		t.Fatalf("fallback should grant the longest queue: %v", dist)
	}
	empty, err := p.Action([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if empty[0] != 0 || empty[1] != 0 {
		t.Fatalf("fallback at empty state should idle: %v", empty)
	}
}

func TestKSwitchingUnconstrainedNearlyDeterministic(t *testing.T) {
	ms := solvedTwoClient(t, JointConfig{})
	sw := ms.Policy.KSwitching()
	// A vertex solution of the unconstrained LP randomises in at most one
	// state per model (one extra basic variable beyond one per state).
	if len(sw.Randomised) > 1 {
		t.Fatalf("unconstrained policy randomises in %d states: %s", len(sw.Randomised), sw)
	}
}

func TestKSwitchingConstrainedBounded(t *testing.T) {
	free := solvedTwoClient(t, JointConfig{})
	_ = free
	ms := solvedTwoClient(t, JointConfig{OccupancyCap: 4.0})
	sw := ms.Policy.KSwitching()
	// Feinberg 2002: one linking constraint adds at most one randomised
	// state (plus the one vertex slack) — allow 2.
	if len(sw.Randomised) > 2 {
		t.Fatalf("constrained policy randomises in %d states: %s", len(sw.Randomised), sw)
	}
	// Base policy must cover every visited non-empty state.
	for s, v := range ms.Policy.Visited {
		if !v {
			continue
		}
		nonEmpty := false
		for c := range ms.Model.Clients {
			if ms.Model.Level(s, c) > 0 {
				nonEmpty = true
			}
		}
		if nonEmpty && sw.BasePolicy[s] < 0 {
			t.Fatalf("visited non-empty state %d has no base action", s)
		}
	}
}

func TestSwitchingString(t *testing.T) {
	ms := solvedTwoClient(t, JointConfig{OccupancyCap: 4.0})
	s := ms.Policy.KSwitching().String()
	if !strings.Contains(s, "randomised states:") {
		t.Fatalf("switching string %q", s)
	}
}
