package ctmdp

import (
	"errors"
	"math"
	"testing"

	"socbuf/internal/lp"
)

// TestWarmStationaryAgreesWithCold is the warm-start correctness gate at the
// ctmdp layer: on every fixture, a sparse-iterative stationary solve seeded
// with a prior — the exact answer, a perturbed answer, or garbage — agrees
// with the unseeded solve to 1e-8. A warm start is a hint about where to
// start iterating, never about where to stop.
func TestWarmStationaryAgreesWithCold(t *testing.T) {
	for name, m := range fixtureModels(t) {
		sol := mustSolve(t, []*Model{m}, JointConfig{})
		ms := sol.PerModel[0]
		opts := StationaryOptions{Method: MethodSparseIterative}
		cold, err := ms.StationaryUnderPolicy(opts)
		if err != nil {
			t.Fatalf("%s: cold: %v", name, err)
		}

		perturbed := make([]float64, len(cold))
		for i, p := range cold {
			perturbed[i] = p + 1e-3/float64(len(cold))
		}
		priors := map[string][]float64{
			"exact":        cold,
			"perturbed":    perturbed,
			"wrong-length": {0.5, 0.5},
			"massless":     make([]float64, len(cold)),
		}
		for pname, prior := range priors {
			opts := opts
			opts.Warm = prior
			warm, err := ms.StationaryUnderPolicy(opts)
			if err != nil {
				t.Fatalf("%s/%s: warm: %v", name, pname, err)
			}
			for s := range cold {
				if d := math.Abs(warm[s] - cold[s]); d > 1e-8 {
					t.Fatalf("%s/%s: warm and cold stationary differ by %g at state %d", name, pname, d, s)
				}
			}
		}
	}
}

// TestWarmCappedSolveAgreesWithCold: re-solving fixtures under an occupancy
// cap from their free solves' bases (the solve-cache's seeding) must reach
// the cold optimum — same objective to 1e-8, warm path cheaper in pivots.
func TestWarmCappedSolveAgreesWithCold(t *testing.T) {
	for name, m := range fixtureModels(t) {
		free := mustSolve(t, []*Model{m}, JointConfig{})
		if free.OccupancyUsed < 0.1 {
			continue
		}
		capped := JointConfig{OccupancyCap: free.OccupancyUsed * 0.9}
		cold, err := SolveJoint([]*Model{m}, capped)
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: cold: %v", name, err)
		}
		warmCfg := capped
		warmCfg.WarmX = [][]float64{free.PerModel[0].X}
		warmCfg.WarmBasis = [][]lp.BasicRef{free.Basis}
		warm, err := SolveJoint([]*Model{m}, warmCfg)
		if err != nil {
			t.Fatalf("%s: warm: %v", name, err)
		}
		if d := math.Abs(warm.TotalLossRate - cold.TotalLossRate); d > 1e-8 {
			t.Errorf("%s: warm and cold capped objectives differ by %g", name, d)
		}
		if d := math.Abs(warm.OccupancyUsed - cold.OccupancyUsed); d > 1e-6 {
			t.Errorf("%s: warm and cold occupancies differ by %g", name, d)
		}
	}
}

// TestWarmRefineStationary: RefineStationary threads the prior through to
// the iterative solver and lands on the same refined measure.
func TestWarmRefineStationary(t *testing.T) {
	m := fixtureModels(t)["three-client"]
	coldSol := mustSolve(t, []*Model{m}, JointConfig{})
	cold := coldSol.PerModel[0]
	if _, err := cold.RefineStationary(StationaryOptions{Method: MethodSparseIterative}); err != nil {
		t.Fatal(err)
	}

	warmSol := mustSolve(t, []*Model{m}, JointConfig{})
	warm := warmSol.PerModel[0]
	if _, err := warm.RefineStationary(StationaryOptions{
		Method: MethodSparseIterative,
		Warm:   cold.StateProb,
	}); err != nil {
		t.Fatal(err)
	}
	for s := range cold.StateProb {
		if d := math.Abs(warm.StateProb[s] - cold.StateProb[s]); d > 1e-8 {
			t.Fatalf("refined warm and cold differ by %g at state %d", d, s)
		}
	}
	if d := math.Abs(warm.LossRate - cold.LossRate); d > 1e-8 {
		t.Fatalf("refined loss rates differ by %g", d)
	}
}
