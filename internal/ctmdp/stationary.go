package ctmdp

import (
	"fmt"
	"math"

	"socbuf/internal/linalg"
	"socbuf/internal/markov"
)

// SolveMethod selects how a policy-induced chain's stationary distribution is
// computed.
type SolveMethod int

const (
	// MethodAuto picks by reachable-state count: dense LU below
	// StationaryOptions.DenseThreshold, aggregation at or above
	// StationaryOptions.AggregationThreshold, Gauss–Seidel in between.
	MethodAuto SolveMethod = iota
	// MethodDenseLU solves the balance equations directly with the dense LU
	// factorisation (exact up to roundoff, O(n³)).
	MethodDenseLU
	// MethodSparseIterative assembles the generator in CSR form and runs the
	// sparse Gauss–Seidel solver (power-iteration fallback). O(nnz) per
	// sweep; the CTMDP chains have O(n) transitions, so this is the scalable
	// path.
	MethodSparseIterative
	// MethodAggregation runs the two-level iterative aggregation/
	// disaggregation solver (linalg.StationaryAggregation): Gauss–Seidel
	// smoothing plus an exact solve of a block-aggregated chain each cycle.
	// On slowly mixing chains — the birth–death-like shape policy-induced
	// queues take — plain Gauss–Seidel moves probability mass one state per
	// sweep and can exhaust its sweep budget without converging, while the
	// aggregate solve redistributes mass globally every cycle. Falls back to
	// Gauss–Seidel/power if the aggregation cycle itself fails.
	MethodAggregation
)

// Measured auto-path thresholds (reference container, 2026-08-08; see
// PERFORMANCE.md "Kernels, measured"). Dense LU ties the iterative solvers
// around 32–48 reachable states and is 4× slower by 64; Gauss–Seidel and
// aggregation are comparable on fast-mixing chains up to ~512 states, beyond
// which aggregation's robustness on slow-mixing chains dominates (Gauss–
// Seidel can fail to converge outright on 512-state birth–death chains that
// aggregation solves in milliseconds).
const (
	// DefaultDenseThreshold is MethodAuto's dense-LU ceiling when
	// StationaryOptions.DenseThreshold is zero. (Previously a hardcoded
	// SparseStateThreshold = 400 — far past the measured crossover.)
	DefaultDenseThreshold = 48
	// DefaultAggregationThreshold is MethodAuto's aggregation floor when
	// StationaryOptions.AggregationThreshold is zero.
	DefaultAggregationThreshold = 512
)

// StationaryOptions tunes the stationary solves of policy-induced chains.
// The zero value (auto method, solver-default tolerance, measured default
// thresholds) is what the pipeline uses.
type StationaryOptions struct {
	Method SolveMethod
	// Tol is the iterative solver's residual tolerance; ≤ 0 picks the
	// default (1e-12), which keeps dense and sparse answers within 1e-8 of
	// each other.
	Tol float64
	// MaxIters bounds iterative sweeps; ≤ 0 picks the default.
	MaxIters int
	// DenseThreshold is the reachable-state count below which MethodAuto
	// picks dense LU; ≤ 0 picks DefaultDenseThreshold. Fingerprinted by the
	// solve cache (it changes which solver produced a cached payload).
	DenseThreshold int
	// AggregationThreshold is the reachable-state count at which MethodAuto
	// switches from Gauss–Seidel to the aggregation solver; ≤ 0 picks
	// DefaultAggregationThreshold. Fingerprinted like DenseThreshold.
	AggregationThreshold int
	// Warm optionally seeds the iterative solvers with a prior stationary
	// distribution over the FULL model state space (the shape StateProb and
	// StationaryUnderPolicy use); it is restricted to the policy chain's
	// reachable states internally. Nil, wrong-length or massless priors are
	// ignored. A warm start never changes what the solve converges to — the
	// residual tolerance is unchanged, and the solve-cache's correctness
	// gate asserts warm and cold answers agree to 1e-8 — it only reduces the
	// sweep count when the prior is close (e.g. the solution of the same
	// sub-model before a capacity change). The dense-LU path ignores it
	// (direct solves have no iteration to seed). Warm is deliberately NOT
	// part of a solve-cache fingerprint: it cannot affect the converged
	// answer beyond the agreement tolerance.
	Warm []float64
}

// PolicyChain is the CTMC induced by a solved policy, restricted to the
// states reachable from the all-empty state (the chain's single recurrent
// class — unreachable states carry no stationary mass and would make the
// full-space chain reducible).
type PolicyChain struct {
	// States lists the reachable model state indices in increasing order.
	States []int
	// Gen is the restricted generator in CSR form; row/column k corresponds
	// to States[k].
	Gen *linalg.CSR
}

// PolicyChain builds the policy-induced chain of the solution. Service rates
// are split across clients by the policy's conditional action probabilities;
// LP-unvisited states use the policy's longest-queue fallback, matching what
// the simulator executes.
func (ms *ModelSolution) PolicyChain() (*PolicyChain, error) {
	m := ms.Model

	// Breadth-first reachability from the all-empty state under the policy.
	reach := make([]bool, m.numStates)
	reach[0] = true
	queue := []int{0}
	levels := make([]int, len(m.Clients))
	var order []int
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		order = append(order, s)
		for c := range m.Clients {
			levels[c] = m.Level(s, c)
		}
		if err := ms.policyTransitions(s, levels, func(t int, rate float64) {
			if !reach[t] {
				reach[t] = true
				queue = append(queue, t)
			}
		}); err != nil {
			return nil, err
		}
	}

	states := make([]int, 0, len(order))
	for s := 0; s < m.numStates; s++ {
		if reach[s] {
			states = append(states, s)
		}
	}
	index := make(map[int]int, len(states))
	for k, s := range states {
		index[s] = k
	}

	b := linalg.NewSparseBuilder(len(states), len(states))
	for k, s := range states {
		for c := range m.Clients {
			levels[c] = m.Level(s, c)
		}
		var exit float64
		if err := ms.policyTransitions(s, levels, func(t int, rate float64) {
			b.Add(k, index[t], rate)
			exit += rate
		}); err != nil {
			return nil, err
		}
		b.Add(k, k, -exit)
	}
	return &PolicyChain{States: states, Gen: b.Build()}, nil
}

// iterOptions builds the iterative-solver options for a policy chain,
// restricting a full-state warm prior to the chain's reachable states;
// IterOptions.initial renormalises and falls back to uniform if the
// restriction carries no mass.
func (ms *ModelSolution) iterOptions(opts StationaryOptions, chain *PolicyChain) linalg.IterOptions {
	var init []float64
	if len(opts.Warm) == ms.Model.numStates {
		init = make([]float64, len(chain.States))
		for k, s := range chain.States {
			init[k] = opts.Warm[s]
		}
	}
	return linalg.IterOptions{Tol: opts.Tol, MaxIters: opts.MaxIters, Init: init}
}

// policyTransitions invokes fn for every outgoing transition of state s under
// the solved policy: client arrivals below capacity, and service split across
// non-empty clients by the conditional grant probabilities.
func (ms *ModelSolution) policyTransitions(s int, levels []int, fn func(target int, rate float64)) error {
	m := ms.Model
	for c, cl := range m.Clients {
		if cl.Lambda > 0 && levels[c] < cl.Levels {
			fn(s+m.strides[c], cl.Lambda)
		}
	}
	probs, err := ms.Policy.Action(levels)
	if err != nil {
		return err
	}
	for c, p := range probs {
		if p > 0 && levels[c] > 0 {
			fn(s-m.strides[c], m.ServiceRate*p)
		}
	}
	return nil
}

// StationaryUnderPolicy computes the stationary state distribution of the
// policy-induced chain with the selected solve method and returns it over the
// full state space (zero mass on unreachable states). MethodAuto picks dense
// LU or sparse-iterative by reachable-state count.
func (ms *ModelSolution) StationaryUnderPolicy(opts StationaryOptions) ([]float64, error) {
	chain, err := ms.PolicyChain()
	if err != nil {
		return nil, err
	}
	n := len(chain.States)
	full := make([]float64, ms.Model.numStates)
	if n == 1 {
		// Single reachable state (e.g. every client inert): trivially π = 1.
		full[chain.States[0]] = 1
		return full, nil
	}

	method := opts.Method
	if method == MethodAuto {
		denseTh := opts.DenseThreshold
		if denseTh <= 0 {
			denseTh = DefaultDenseThreshold
		}
		aggTh := opts.AggregationThreshold
		if aggTh <= 0 {
			aggTh = DefaultAggregationThreshold
		}
		switch {
		case n < denseTh:
			method = MethodDenseLU
		case n >= aggTh:
			method = MethodAggregation
		default:
			method = MethodSparseIterative
		}
	}

	var pi []float64
	switch method {
	case MethodDenseLU:
		g := markov.NewGenerator(n)
		for i := 0; i < n; i++ {
			for k := chain.Gen.RowPtr[i]; k < chain.Gen.RowPtr[i+1]; k++ {
				if j := chain.Gen.Col[k]; j != i {
					if err := g.AddRate(i, j, chain.Gen.Val[k]); err != nil {
						return nil, err
					}
				}
			}
		}
		pi, err = g.Stationary()
	case MethodSparseIterative:
		pi, err = linalg.StationarySparse(chain.Gen, ms.iterOptions(opts, chain))
	case MethodAggregation:
		pi, err = linalg.StationaryAggregation(chain.Gen, ms.iterOptions(opts, chain))
		if err != nil {
			// The aggregation cycle can fail on pathological chains (e.g. a
			// nearly reducible aggregate); the Gauss–Seidel/power chain is
			// slower but has no coarse solve to go singular.
			pi, err = linalg.StationarySparse(chain.Gen, ms.iterOptions(opts, chain))
		}
	default:
		return nil, fmt.Errorf("ctmdp: unknown stationary method %d", method)
	}
	if err != nil {
		return nil, fmt.Errorf("ctmdp: stationary under policy: %w", err)
	}
	for k, s := range chain.States {
		full[s] = pi[k]
	}
	return full, nil
}

// RefineStationary recomputes the solution's stationary distribution from the
// policy-induced chain and rescales the occupation measure to match,
// tightening the LP's roundoff-level state probabilities. It returns the
// largest per-state correction |π_refined − π_LP|. The policy itself (the
// conditional action probabilities) is unchanged.
func (ms *ModelSolution) RefineStationary(opts StationaryOptions) (float64, error) {
	pi, err := ms.StationaryUnderPolicy(opts)
	if err != nil {
		return 0, err
	}
	m := ms.Model
	var maxDelta float64
	for s := 0; s < m.numStates; s++ {
		if d := math.Abs(pi[s] - ms.StateProb[s]); d > maxDelta {
			maxDelta = d
		}
	}

	// Rescale x(s,·) so each state's mass matches the refined π while the
	// conditional split across actions is preserved.
	for s := 0; s < m.numStates; s++ {
		var mass float64
		for _, v := range m.varsByState[s] {
			mass += ms.X[v]
		}
		switch {
		case mass > 0:
			f := pi[s] / mass
			for _, v := range m.varsByState[s] {
				ms.X[v] *= f
			}
		case pi[s] > 0:
			// Reachable under the fallback policy but unvisited by the LP:
			// assign the state's mass to the fallback (deterministic) action.
			levels := make([]int, len(m.Clients))
			for c := range m.Clients {
				levels[c] = m.Level(s, c)
			}
			probs, err := ms.Policy.Action(levels)
			if err != nil {
				return 0, err
			}
			for _, v := range m.varsByState[s] {
				if a := m.vars[v].action; a >= 0 && probs[a] > 0 {
					ms.X[v] = pi[s] * probs[a]
				} else if a < 0 {
					ms.X[v] = pi[s]
				}
			}
		}
	}
	copy(ms.StateProb, pi)
	ms.LossRate = 0
	for v, sv := range m.vars {
		ms.LossRate += m.CostRate(sv.state, sv.action) * ms.X[v]
	}
	return maxDelta, nil
}
