package ctmdp

import (
	"errors"
	"fmt"

	"socbuf/internal/lp"
)

// JointConfig parameterises SolveJoint.
type JointConfig struct {
	// OccupancyCap bounds the total expected buffer occupancy (in physical
	// units) across all subsystems: Σ_m Σ_(s,a) occ_m(s)·x_m(s,a) ≤ cap.
	// This is the constraint that links the subsystem blocks into one LP —
	// the paper's "solve all the equations in one go". Zero or negative
	// disables it (the blocks then decouple mathematically but are still
	// solved in a single program unless Sequential is set).
	OccupancyCap float64
	// Sequential solves each model in its own LP instead of one joint
	// program; the ablation baseline for the paper's §2 claim. Incompatible
	// with a positive OccupancyCap (the cap needs the joint program).
	Sequential bool
	// RefineStationary recomputes each solution's stationary distribution
	// from its policy-induced chain after the LP solve, choosing dense-LU or
	// sparse-iterative by state-space size (see StationaryOptions). This
	// tightens the LP's roundoff-level state probabilities and is the hook
	// the large-state-space path hangs off.
	RefineStationary bool
	// Stationary tunes the refinement solves; the zero value auto-selects.
	Stationary StationaryOptions
	// WarmX optionally seeds the joint LP with a known near-solution: one
	// occupation measure per model, each aligned with that model's
	// enumeration (nil entries disable the seed). The canonical use is
	// re-solving the same models under a new OccupancyCap from their cached
	// cap-free optimum: the balance system is unchanged, so the seed crashes
	// straight past simplex phase 1 and the new cap row is repaired by dual
	// steps (lp.Problem.Warm). A seed can never change the optimum reached
	// — the LP layer falls back to the cold two-phase solve whenever the
	// candidate does not certify — though on degenerate programs it may
	// select a different optimal vertex of equal objective.
	WarmX [][]float64
	// WarmBasis is the strong form of WarmX: each model's final simplex
	// basis from a previous solve of the same balance system (the Basis of
	// a single-model JointSolution). Reconstructing the basis set restores
	// that solve's reduced costs, so re-solving under a new OccupancyCap
	// needs only a handful of dual pivots instead of a full two-phase solve.
	// Ignored unless every model has a shape-matching entry.
	WarmBasis [][]lp.BasicRef
}

// ModelSolution is the solved occupation measure of one subsystem plus the
// derived quantities the rest of the pipeline consumes.
type ModelSolution struct {
	Model *Model
	// X holds the optimal occupation measure aligned with the model's
	// internal (state, action) enumeration.
	X []float64
	// StateProb is the stationary state distribution Σ_a x(s,a).
	StateProb []float64
	// LossRate is the model's weighted loss rate at the optimum.
	LossRate float64
	// Policy is the optimal stationary (possibly randomised) arbitration.
	Policy *Policy
}

// JointSolution is the result of SolveJoint.
type JointSolution struct {
	PerModel []*ModelSolution
	// TotalLossRate is the summed weighted loss rate (the LP objective).
	TotalLossRate float64
	// OccupancyUsed is the expected total occupancy in units at the optimum.
	OccupancyUsed float64
	// CapBinding reports whether the occupancy cap held with equality
	// (within tolerance) — when true the K-switching theorem predicts
	// randomisation.
	CapBinding bool
	// Iters counts simplex pivots.
	Iters int
	// Basis is the assembled LP's final simplex basis (layout-independent;
	// see lp.Solution.Basis). For a single-model solve it is the currency of
	// JointConfig.WarmBasis: hand it back to re-solve the same balance
	// system under a different occupancy cap with a few dual pivots.
	Basis []lp.BasicRef
}

// ErrInfeasible is returned when the assembled LP has no feasible point
// (cannot happen for valid models unless the occupancy cap is below the
// minimum achievable expected occupancy).
var ErrInfeasible = errors.New("ctmdp: LP infeasible")

// SolveJoint assembles and solves the occupation-measure LP of the given
// subsystem models, jointly unless cfg.Sequential.
func SolveJoint(models []*Model, cfg JointConfig) (*JointSolution, error) {
	if len(models) == 0 {
		return nil, errors.New("ctmdp: no models")
	}
	if cfg.Sequential && cfg.OccupancyCap > 0 {
		return nil, errors.New("ctmdp: sequential solving cannot honour a joint occupancy cap")
	}
	if cfg.Sequential {
		out := &JointSolution{}
		for _, m := range models {
			one, err := SolveJoint([]*Model{m}, JointConfig{
				RefineStationary: cfg.RefineStationary,
				Stationary:       cfg.Stationary,
			})
			if err != nil {
				return nil, fmt.Errorf("ctmdp: model %q: %w", m.Bus, err)
			}
			out.PerModel = append(out.PerModel, one.PerModel[0])
			out.TotalLossRate += one.TotalLossRate
			out.OccupancyUsed += one.OccupancyUsed
			out.Iters += one.Iters
		}
		return out, nil
	}

	prob, offsets, err := assembleJoint(models, cfg)
	if err != nil {
		return nil, err
	}

	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("ctmdp: simplex: %w", err)
	}
	return extractJoint(models, offsets, cfg, sol)
}

// assembleJoint builds the occupation-measure LP of the models under cfg:
// per-model balance and normalisation rows, warm seeds, and — appended LAST,
// as the delta re-solve path (CappedResolver) and lp.Problem.WarmBasis both
// rely on — the linking occupancy row when cfg.OccupancyCap > 0. It returns
// the problem and the per-model variable offsets.
func assembleJoint(models []*Model, cfg JointConfig) (*lp.Problem, []int, error) {
	// Variable layout: models in order, each contributing NumVars variables.
	offsets := make([]int, len(models))
	total := 0
	for i, m := range models {
		offsets[i] = total
		total += m.NumVars()
	}
	prob := lp.NewProblem(total)

	// Objective: weighted loss rates.
	for i, m := range models {
		for v, sv := range m.vars {
			prob.Objective[offsets[i]+v] = m.CostRate(sv.state, sv.action)
		}
	}

	// Balance rows per model: Σ_(s,a) x(s,a)·q(j|s,a) = 0 for every state j.
	// One row per model is redundant; the simplex phase 1 tolerates it.
	for i, m := range models {
		rows := make([][]float64, m.numStates)
		for j := range rows {
			rows[j] = make([]float64, total)
		}
		for v, sv := range m.vars {
			col := offsets[i] + v
			var exit float64
			m.transitions(sv.state, sv.action, func(target int, rate float64) {
				rows[target][col] += rate
				exit += rate
			})
			rows[sv.state][col] -= exit
		}
		for j := range rows {
			if err := prob.AddConstraint(rows[j], lp.EQ, 0); err != nil {
				return nil, nil, err
			}
		}
		// Normalisation: the model's measure is a probability distribution.
		norm := make([]float64, total)
		for v := range m.vars {
			norm[offsets[i]+v] = 1
		}
		if err := prob.AddConstraint(norm, lp.EQ, 1); err != nil {
			return nil, nil, err
		}
	}

	// Warm seeds: the concatenated per-model measures and bases, each
	// accepted only when every model has a shape-matching entry (a partial
	// seed would crash an inconsistent start and always fall back cold —
	// wasted work). Rows were appended per model as numStates balance rows
	// plus one normalisation row, which fixes the offsets; the cap row, when
	// present, comes after every per-model block, as lp.Problem.WarmBasis
	// requires of constraints the donor basis has not seen.
	if len(cfg.WarmX) == len(models) {
		warm := make([]float64, 0, total)
		for i, m := range models {
			if len(cfg.WarmX[i]) != m.NumVars() {
				warm = nil
				break
			}
			warm = append(warm, cfg.WarmX[i]...)
		}
		prob.Warm = warm
	}
	if len(cfg.WarmBasis) == len(models) {
		var basis []lp.BasicRef
		rowOff := 0
		for i, m := range models {
			rows := m.numStates + 1
			if len(cfg.WarmBasis[i]) != rows {
				basis = nil
				break
			}
			for _, ref := range cfg.WarmBasis[i] {
				if ref.Var >= 0 {
					ref.Var += offsets[i]
				} else {
					ref.Row += rowOff
				}
				basis = append(basis, ref)
			}
			rowOff += rows
		}
		prob.WarmBasis = basis
	}

	// Linking occupancy row.
	if cfg.OccupancyCap > 0 {
		row := make([]float64, total)
		occupancyRow(models, offsets, row)
		if err := prob.AddConstraint(row, lp.LE, cfg.OccupancyCap); err != nil {
			return nil, nil, err
		}
	}
	return prob, offsets, nil
}

// occupancyRow fills row (length = total variable count, pre-zeroed or fully
// overwritten here) with the linking constraint's coefficients: each
// variable's state occupancy in physical units.
func occupancyRow(models []*Model, offsets []int, row []float64) {
	for i, m := range models {
		for v, sv := range m.vars {
			row[offsets[i]+v] = m.OccupancyUnits(sv.state)
		}
	}
}

// extractJoint maps the LP outcome back to the model layer: status check,
// per-model occupation measures, policies, and the optional stationary
// refinement pass.
func extractJoint(models []*Model, offsets []int, cfg JointConfig, sol *lp.Solution) (*JointSolution, error) {
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, ErrInfeasible
	default:
		return nil, fmt.Errorf("ctmdp: unexpected LP status %v", sol.Status)
	}

	out := &JointSolution{TotalLossRate: sol.Objective, Iters: sol.Iters, Basis: sol.Basis}
	var occUsed float64
	for i, m := range models {
		ms := &ModelSolution{Model: m, X: make([]float64, m.NumVars())}
		copy(ms.X, sol.X[offsets[i]:offsets[i]+m.NumVars()])
		ms.StateProb = make([]float64, m.numStates)
		for v, sv := range m.vars {
			ms.StateProb[sv.state] += ms.X[v]
			occUsed += m.OccupancyUnits(sv.state) * ms.X[v]
			ms.LossRate += m.CostRate(sv.state, sv.action) * ms.X[v]
		}
		ms.Policy = extractPolicy(m, ms.X)
		out.PerModel = append(out.PerModel, ms)
	}
	out.OccupancyUsed = occUsed
	if cfg.RefineStationary {
		out.TotalLossRate, out.OccupancyUsed = 0, 0
		for _, ms := range out.PerModel {
			if _, err := ms.RefineStationary(cfg.Stationary); err != nil {
				return nil, fmt.Errorf("ctmdp: model %q: %w", ms.Model.Bus, err)
			}
			out.TotalLossRate += ms.LossRate
			for s, p := range ms.StateProb {
				out.OccupancyUsed += ms.Model.OccupancyUnits(s) * p
			}
		}
	}
	// CapBinding reflects the occupancy actually reported — after
	// refinement, that is the refined value.
	if cfg.OccupancyCap > 0 && out.OccupancyUsed >= cfg.OccupancyCap*(1-1e-6) {
		out.CapBinding = true
	}
	return out, nil
}

// OccupancyDistribution returns P(level_c = k) for k = 0..Levels of client c
// under the solved stationary measure.
func (ms *ModelSolution) OccupancyDistribution(c int) []float64 {
	m := ms.Model
	dist := make([]float64, m.Clients[c].Levels+1)
	for s, p := range ms.StateProb {
		dist[m.Level(s, c)] += p
	}
	return dist
}

// MeanLevel returns E[level_c] under the stationary measure.
func (ms *ModelSolution) MeanLevel(c int) float64 {
	dist := ms.OccupancyDistribution(c)
	var mean float64
	for k, p := range dist {
		mean += float64(k) * p
	}
	return mean
}

// Throughput returns the service completion rate of client c:
// μ · Σ_s x(s, a=c).
func (ms *ModelSolution) Throughput(c int) float64 {
	var grant float64
	for v, sv := range ms.Model.vars {
		if sv.action == c {
			grant += ms.X[v]
		}
	}
	return ms.Model.ServiceRate * grant
}

// FullProbability returns P(level_c = Levels), the model's estimate that the
// client's buffer is full — the boundary scalar upstream subsystems consume
// as DownstreamFullProb.
func (ms *ModelSolution) FullProbability(c int) float64 {
	dist := ms.OccupancyDistribution(c)
	return dist[len(dist)-1]
}

// ModelLossRate returns the unweighted arrival-loss rate of client c:
// λ_c · P(level_c = Levels).
func (ms *ModelSolution) ModelLossRate(c int) float64 {
	return ms.Model.Clients[c].Lambda * ms.FullProbability(c)
}
