package ctmdp

import (
	"fmt"
	"testing"
)

func benchModel(b *testing.B, clients, levels int) *Model {
	b.Helper()
	cs := make([]Client, clients)
	for i := range cs {
		cs[i] = Client{
			BufferID:      fmt.Sprintf("c%d", i),
			Lambda:        0.5 + float64(i)*0.4,
			Levels:        levels,
			UnitsPerLevel: 2,
			LossWeight:    1,
		}
	}
	m, err := NewModel("bench", float64(clients)*1.2, cs)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkSolveSingleModel3x2(b *testing.B) {
	m := benchModel(b, 3, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := SolveJoint([]*Model{m}, JointConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sol.Iters), "pivots")
	}
}

func BenchmarkSolveSingleModel4x2(b *testing.B) {
	m := benchModel(b, 4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveJoint([]*Model{m}, JointConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveJointCapped(b *testing.B) {
	m1 := benchModel(b, 3, 2)
	m2 := benchModel(b, 3, 2)
	free, err := SolveJoint([]*Model{m1, m2}, JointConfig{})
	if err != nil {
		b.Fatal(err)
	}
	cap95 := free.OccupancyUsed * 0.95
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveJoint([]*Model{m1, m2}, JointConfig{OccupancyCap: cap95}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyExtraction(b *testing.B) {
	m := benchModel(b, 4, 2)
	sol, err := SolveJoint([]*Model{m}, JointConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := extractPolicy(m, sol.PerModel[0].X)
		if p == nil {
			b.Fatal("nil policy")
		}
		_ = p.KSwitching()
	}
}

func BenchmarkTranslateGreedy(b *testing.B) {
	m := benchModel(b, 4, 2)
	sol, err := SolveJoint([]*Model{m}, JointConfig{})
	if err != nil {
		b.Fatal(err)
	}
	d, err := Demands(sol.PerModel, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Translate(d, 640, TranslateGreedyTail); err != nil {
			b.Fatal(err)
		}
	}
}
