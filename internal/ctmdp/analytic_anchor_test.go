package ctmdp

import (
	"fmt"
	"math"
	"testing"

	"socbuf/internal/queueing"
)

// TestSingleBusCTMDPMatchesMM1K is the correctness anchor of the analytic
// solver backend (internal/solver's "analytic" method): for a single-bus
// model with one client at capacity K, the CTMDP has exactly one
// work-conserving policy — serve the queue whenever it is non-empty — so
// its stationary occupation measure IS the M/M/1/K birth–death
// distribution. The LP-solved state probabilities and the closed-form
// queueing.MM1K distribution must therefore agree to 1e-8 across a
// (λ, μ, K) grid spanning underload, critical load (ρ = 1, the uniform
// distribution) and overload, both straight from the LP and after the
// policy-chain stationary refinement.
func TestSingleBusCTMDPMatchesMM1K(t *testing.T) {
	const tol = 1e-8
	lambdas := []float64{0.3, 0.7, 1.0, 1.6}
	mus := []float64{1.0, 2.5}
	caps := []int{1, 2, 3, 5, 8}
	for _, refine := range []bool{false, true} {
		for _, lambda := range lambdas {
			for _, mu := range mus {
				for _, k := range caps {
					name := fmt.Sprintf("refine=%v/l%v/m%v/K%d", refine, lambda, mu, k)
					t.Run(name, func(t *testing.T) {
						m, err := NewModel("bus", mu, []Client{{
							BufferID:      "b",
							Lambda:        lambda,
							Levels:        k,
							UnitsPerLevel: 1,
							LossWeight:    1,
						}})
						if err != nil {
							t.Fatal(err)
						}
						sol, err := SolveJoint([]*Model{m}, JointConfig{RefineStationary: refine})
						if err != nil {
							t.Fatal(err)
						}
						q, err := queueing.NewMM1K(lambda, mu, k)
						if err != nil {
							t.Fatal(err)
						}
						want := q.Distribution()
						ms := sol.PerModel[0]
						if len(ms.StateProb) != len(want) {
							t.Fatalf("state space %d, want %d", len(ms.StateProb), len(want))
						}
						for s, p := range ms.StateProb {
							if math.Abs(p-want[s]) > tol {
								t.Fatalf("pi[%d] = %.12f, M/M/1/K gives %.12f (diff %.3g)",
									s, p, want[s], math.Abs(p-want[s]))
							}
						}
						// The model's blocking estimate is the full-state
						// probability; it must match Blocking() (PASTA), and
						// the weighted loss rate must be λ·B.
						if got := ms.FullProbability(0); math.Abs(got-q.Blocking()) > tol {
							t.Fatalf("P(full) = %.12f, Blocking = %.12f", got, q.Blocking())
						}
						if got := ms.LossRate; math.Abs(got-q.LossRate()) > tol {
							t.Fatalf("loss rate %.12f, λ·B = %.12f", got, q.LossRate())
						}
					})
				}
			}
		}
	}
}
