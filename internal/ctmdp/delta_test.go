package ctmdp

import (
	"errors"
	"math"
	"testing"
)

// deltaFixture builds a two-bus system with a meaningful joint occupancy
// trade-off, parameterised by each bus's unit scaling so tests can emulate a
// budget sweep's re-scaled allocations.
func deltaFixture(t *testing.T, unitsA, unitsB float64) []*Model {
	t.Helper()
	return []*Model{
		mustModel(t, "busA", 4, []Client{
			{BufferID: "a1", Lambda: 2, Levels: 2, UnitsPerLevel: unitsA, LossWeight: 1},
			{BufferID: "a2", Lambda: 1.2, Levels: 2, UnitsPerLevel: unitsA, LossWeight: 2},
		}),
		mustModel(t, "busB", 3, []Client{
			{BufferID: "b1", Lambda: 1.5, Levels: 3, UnitsPerLevel: unitsB, LossWeight: 1},
		}),
	}
}

// TestCappedResolverMatchesFreshSolve chains a budget sweep's worth of cap
// and unit-scaling changes through one CappedResolver and checks every point
// against a fresh SolveJoint. Objectives must agree to 1e-8 — the delta
// path's correctness gate; occupation measures may sit on a different optimal
// vertex of a degenerate program, so the comparison is on the optimum, the
// cap feasibility, and the binding flag, not per-variable.
func TestCappedResolverMatchesFreshSolve(t *testing.T) {
	models := deltaFixture(t, 1, 1)
	free := mustSolve(t, models, JointConfig{})
	if free.OccupancyUsed <= 0 {
		t.Fatalf("degenerate fixture: free occupancy %v", free.OccupancyUsed)
	}

	cr, sol, err := NewCappedResolver(models, JointConfig{OccupancyCap: free.OccupancyUsed * 0.99})
	if err != nil {
		t.Fatal(err)
	}
	check := func(point string, cap float64, models []*Model, got *JointSolution) {
		t.Helper()
		want := mustSolve(t, models, JointConfig{OccupancyCap: cap})
		if d := math.Abs(got.TotalLossRate - want.TotalLossRate); d > 1e-8 {
			t.Fatalf("%s: resolver loss %v, fresh %v (Δ=%g)", point, got.TotalLossRate, want.TotalLossRate, d)
		}
		if got.OccupancyUsed > cap*(1+1e-9) {
			t.Fatalf("%s: resolver occupancy %v exceeds cap %v", point, got.OccupancyUsed, cap)
		}
		if got.CapBinding != want.CapBinding {
			t.Fatalf("%s: resolver CapBinding %v, fresh %v", point, got.CapBinding, want.CapBinding)
		}
	}
	check("initial", free.OccupancyUsed*0.99, models, sol)

	// Cap-only chain: tighter, tighter, looser — the budget sweep's shape.
	// The feasible band is narrow (the occupancy floor sits near 0.96·free on
	// this fixture, which is why core's retry ladder bottoms out at 0.97).
	for _, f := range []float64{0.98, 0.97, 0.985, 0.995, 0.975} {
		cap := free.OccupancyUsed * f
		got, err := cr.Resolve(models, cap)
		if err != nil {
			t.Fatalf("cap %.2f·free: %v", f, err)
		}
		check("cap-only", cap, models, got)
	}

	// Unit-rescaled points: the same structural family (lambdas, levels,
	// weights unchanged) under a different physical unit scaling, as produced
	// by a capacity re-allocation between sweep points.
	rescaled := deltaFixture(t, 2, 1)
	freeR := mustSolve(t, rescaled, JointConfig{})
	for _, f := range []float64{0.99, 0.975} {
		cap := freeR.OccupancyUsed * f
		got, err := cr.Resolve(rescaled, cap)
		if err != nil {
			t.Fatalf("rescaled cap %.2f: %v", f, err)
		}
		check("rescaled", cap, rescaled, got)
		for i, ms := range got.PerModel {
			if ms.Model != rescaled[i] {
				t.Fatalf("rescaled point bound to stale model %d", i)
			}
		}
	}

	resolves, fallbacks := cr.Stats()
	if resolves == 0 {
		t.Fatal("no Resolve call took the rank-one fast path")
	}
	t.Logf("resolves=%d fallbacks=%d", resolves, fallbacks)
}

// TestCappedResolverInfeasibleThenRecover drives the resolver through the cap
// retry ladder's shape: an unsatisfiable cap must surface ErrInfeasible and
// the next, feasible cap must still match a fresh solve.
func TestCappedResolverInfeasibleThenRecover(t *testing.T) {
	models := deltaFixture(t, 1, 1)
	free := mustSolve(t, models, JointConfig{})
	cr, _, err := NewCappedResolver(models, JointConfig{OccupancyCap: free.OccupancyUsed * 0.99})
	if err != nil {
		t.Fatal(err)
	}
	// 0.9·free is below the chain's minimum achievable expected occupancy
	// (see TestCappedResolverMatchesFreshSolve on the feasible band).
	if _, err := cr.Resolve(models, free.OccupancyUsed*0.9); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("sub-floor cap: got %v, want ErrInfeasible", err)
	}
	cap := free.OccupancyUsed * 0.98
	got, err := cr.Resolve(models, cap)
	if err != nil {
		t.Fatal(err)
	}
	want := mustSolve(t, models, JointConfig{OccupancyCap: cap})
	if d := math.Abs(got.TotalLossRate - want.TotalLossRate); d > 1e-8 {
		t.Fatalf("post-infeasible resolve loss %v, fresh %v (Δ=%g)", got.TotalLossRate, want.TotalLossRate, d)
	}
}

// TestCappedResolverRejectsBadInput pins the constructor and shape guards.
func TestCappedResolverRejectsBadInput(t *testing.T) {
	models := deltaFixture(t, 1, 1)
	free := mustSolve(t, models, JointConfig{})
	if _, _, err := NewCappedResolver(models, JointConfig{}); err == nil {
		t.Fatal("cap-free construction accepted")
	}
	if _, _, err := NewCappedResolver(models, JointConfig{OccupancyCap: 1, Sequential: true}); err == nil {
		t.Fatal("sequential construction accepted")
	}
	if _, _, err := NewCappedResolver(nil, JointConfig{OccupancyCap: 1}); err == nil {
		t.Fatal("empty model list accepted")
	}
	cr, _, err := NewCappedResolver(models, JointConfig{OccupancyCap: free.OccupancyUsed * 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Resolve(models, 0); err == nil {
		t.Fatal("non-positive cap accepted")
	}
	if _, err := cr.Resolve(models[:1], 1); err == nil {
		t.Fatal("model count mismatch accepted")
	}
	other := []*Model{models[0], mustModel(t, "busB", 3, singleClient(1.5, 4))}
	if _, err := cr.Resolve(other, 1); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
