package ctmdp

import (
	"errors"
	"fmt"

	"socbuf/internal/lp"
)

// CappedResolver re-solves the joint occupation-measure LP across a sequence
// of occupancy caps — and capacity allocations that change only the models'
// UnitsPerLevel — without re-running the simplex from scratch each time. It
// wraps lp.Resolver around the assembled joint program: between adjacent
// budget-sweep points only the linking occupancy row (its coefficients, from
// the new allocation's unit scaling, and its right-hand side, the new cap)
// changes, so each re-solve is a rank-one tableau update plus a handful of
// dual pivots instead of a full two-phase solve.
//
// Correctness contract (see DESIGN.md §8): the models passed to Resolve MUST
// be structurally identical to the constructor's — same client count and
// order, same Levels, Lambda, LossWeight, ServiceRate and DownstreamFullProb
// — differing at most in UnitsPerLevel. Those are exactly the fields outside
// the occupancy row: the balance rows and the objective are then
// bit-identical, so patching the occupancy row is the whole difference
// between the two programs. Resolve checks shapes (model count, variable and
// state counts) and leaves the structural identity to the caller; the
// solvecache layer enforces it with structural fingerprints. The LP layer
// guarantees the patched solve reaches the same optimum as a fresh one (its
// residual self-check falls back to a cold solve otherwise), so chaining can
// only change pivot counts and roundoff at the 1e-8 level, never the result.
type CappedResolver struct {
	models  []*Model
	offsets []int
	capRow  int
	cfg     JointConfig
	res     *lp.Resolver
	row     []float64 // occupancy-coefficient scratch, one slot per LP variable
}

// NewCappedResolver assembles the joint LP under cfg (which must carry a
// positive OccupancyCap and no Sequential flag), solves it, and returns the
// resolver alongside the first solution. ErrInfeasible is reported through
// the error, matching SolveJoint.
func NewCappedResolver(models []*Model, cfg JointConfig) (*CappedResolver, *JointSolution, error) {
	if len(models) == 0 {
		return nil, nil, errors.New("ctmdp: no models")
	}
	if cfg.OccupancyCap <= 0 {
		return nil, nil, errors.New("ctmdp: capped resolver needs a positive occupancy cap")
	}
	if cfg.Sequential {
		return nil, nil, errors.New("ctmdp: capped resolver needs the joint program")
	}
	prob, offsets, err := assembleJoint(models, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := lp.NewResolver(prob)
	if err != nil {
		return nil, nil, fmt.Errorf("ctmdp: simplex: %w", err)
	}
	cr := &CappedResolver{
		models:  models,
		offsets: offsets,
		capRow:  len(prob.Constraints) - 1, // assembleJoint appends the cap row last
		cfg:     cfg,
		res:     res,
		row:     make([]float64, prob.NumVars()),
	}
	sol, err := extractJoint(models, offsets, cfg, res.Solution())
	if err != nil {
		if errors.Is(err, ErrInfeasible) {
			// The tableau is dual-feasible and perfectly reusable: hand the
			// resolver back alongside the error so a retry ladder can chain
			// its looser caps through the fast path.
			return cr, nil, err
		}
		return nil, nil, err
	}
	return cr, sol, nil
}

// Resolve re-solves under a new occupancy cap and (possibly re-scaled)
// models, patching the linking row in place. models must satisfy the
// structural contract in the type comment; pass the constructor's slice to
// change only the cap. The returned solution is bound to the NEW models.
func (cr *CappedResolver) Resolve(models []*Model, cap float64) (*JointSolution, error) {
	if cap <= 0 {
		return nil, errors.New("ctmdp: capped resolver needs a positive occupancy cap")
	}
	if len(models) != len(cr.models) {
		return nil, fmt.Errorf("ctmdp: resolver built for %d models, got %d", len(cr.models), len(models))
	}
	for i, m := range models {
		if m.NumVars() != cr.models[i].NumVars() || m.numStates != cr.models[i].numStates {
			return nil, fmt.Errorf("ctmdp: model %d shape changed (%d vars / %d states, want %d / %d)",
				i, m.NumVars(), m.numStates, cr.models[i].NumVars(), cr.models[i].numStates)
		}
	}
	occupancyRow(models, cr.offsets, cr.row)
	sol, err := cr.res.Resolve(cr.capRow, cr.row, cap)
	if err != nil {
		return nil, fmt.Errorf("ctmdp: simplex: %w", err)
	}
	cfg := cr.cfg
	cfg.OccupancyCap = cap
	return extractJoint(models, cr.offsets, cfg, sol)
}

// Stats reports how many Resolve calls took the rank-one fast path and how
// many fell back to a full re-solve.
func (cr *CappedResolver) Stats() (resolves, fallbacks int) {
	return cr.res.Resolves, cr.res.Fallbacks
}
