package ctmdp

import (
	"errors"
	"math"
	"testing"

	"socbuf/internal/queueing"
)

// fixtureModels rebuilds every single-bus model fixture the solve/sizing
// tests exercise, so the dense-vs-sparse agreement check covers the same
// ground as the rest of the suite.
func fixtureModels(t *testing.T) map[string]*Model {
	t.Helper()
	return map[string]*Model{
		"mm1k-1": mustModel(t, "b", 3, singleClient(2, 1)),
		"mm1k-2": mustModel(t, "b", 3, singleClient(2, 2)),
		"mm1k-4": mustModel(t, "b", 3, singleClient(2, 4)),
		"two-client": mustModel(t, "b", 4, []Client{
			{BufferID: "x", Lambda: 2, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
			{BufferID: "y", Lambda: 1, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		}),
		"hot-cold": mustModel(t, "b", 3.5, []Client{
			{BufferID: "hot", Lambda: 3, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
			{BufferID: "cold", Lambda: 0.3, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		}),
		"asymmetric-units": mustModel(t, "b", 4.5, []Client{
			{BufferID: "x", Lambda: 2.0, Levels: 2, UnitsPerLevel: 5, LossWeight: 1},
			{BufferID: "y", Lambda: 2.0, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		}),
		"inert-client": mustModel(t, "b", 3, []Client{
			{BufferID: "live", Lambda: 2, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
			{BufferID: "dead", Lambda: 0, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		}),
		"three-client": mustModel(t, "b", 6, []Client{
			{BufferID: "a", Lambda: 1.5, Levels: 3, UnitsPerLevel: 1, LossWeight: 1},
			{BufferID: "b", Lambda: 2.0, Levels: 2, UnitsPerLevel: 2, LossWeight: 2},
			{BufferID: "c", Lambda: 0.7, Levels: 3, UnitsPerLevel: 1, LossWeight: 1},
		}),
	}
}

// TestDenseSparseStationaryAgree is the acceptance check: on every fixture,
// the sparse-iterative stationary solve of the policy-induced chain agrees
// with the dense-LU solve to 1e-8, for both free and capped policies.
func TestDenseSparseStationaryAgree(t *testing.T) {
	for name, m := range fixtureModels(t) {
		configs := []JointConfig{{}}
		free := mustSolve(t, []*Model{m}, JointConfig{})
		if free.OccupancyUsed > 0.1 {
			configs = append(configs, JointConfig{OccupancyCap: free.OccupancyUsed * 0.9})
		}
		for ci, cfg := range configs {
			sol, err := SolveJoint([]*Model{m}, cfg)
			if errors.Is(err, ErrInfeasible) {
				continue // a 90% cap is not feasible for every fixture
			}
			if err != nil {
				t.Fatalf("%s cfg %d: %v", name, ci, err)
			}
			ms := sol.PerModel[0]
			dense, err := ms.StationaryUnderPolicy(StationaryOptions{Method: MethodDenseLU})
			if err != nil {
				t.Fatalf("%s cfg %d dense: %v", name, ci, err)
			}
			sparse, err := ms.StationaryUnderPolicy(StationaryOptions{Method: MethodSparseIterative})
			if err != nil {
				t.Fatalf("%s cfg %d sparse: %v", name, ci, err)
			}
			for s := range dense {
				if d := math.Abs(dense[s] - sparse[s]); d > 1e-8 {
					t.Fatalf("%s cfg %d state %d: dense %v sparse %v (Δ=%g)",
						name, ci, s, dense[s], sparse[s], d)
				}
			}
			// Both must also reproduce the LP's stationary distribution: the
			// occupation measure is stationary for its own policy.
			for s := range dense {
				if d := math.Abs(dense[s] - ms.StateProb[s]); d > 1e-6 {
					t.Fatalf("%s cfg %d state %d: chain π %v vs LP %v (Δ=%g)",
						name, ci, s, dense[s], ms.StateProb[s], d)
				}
			}
		}
	}
}

// longestQueueSolution builds a ModelSolution with a synthetic deterministic
// longest-queue policy over the full state space, bypassing the LP. Only the
// Model and Policy fields are populated — enough for the stationary-solve
// paths, and cheap enough to exercise state spaces the simplex cannot.
func longestQueueSolution(m *Model) *ModelSolution {
	p := &Policy{
		Model:      m,
		ActionProb: make([][]float64, m.numStates),
		Visited:    make([]bool, m.numStates),
	}
	for s := 0; s < m.numStates; s++ {
		p.Visited[s] = true
		p.ActionProb[s] = make([]float64, len(m.Clients))
		best, bestLvl := -1, 0
		for c := range m.Clients {
			if l := m.Level(s, c); l > bestLvl {
				best, bestLvl = c, l
			}
		}
		if best >= 0 {
			p.ActionProb[s][best] = 1
		}
	}
	return &ModelSolution{Model: m, Policy: p}
}

func TestStationaryAutoPicksByStateCount(t *testing.T) {
	// A three-client model with deep levels reaches the aggregation band:
	// (L+1)^3 with L=7 is 512 = DefaultAggregationThreshold. The LP would
	// take minutes here, so the chain comes from a synthetic longest-queue
	// policy instead.
	big := mustModel(t, "b", 8, []Client{
		{BufferID: "a", Lambda: 2, Levels: 7, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "b", Lambda: 2.5, Levels: 7, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "c", Lambda: 1.5, Levels: 7, UnitsPerLevel: 1, LossWeight: 1},
	})
	if big.NumStates() < DefaultAggregationThreshold {
		t.Fatalf("fixture too small: %d states", big.NumStates())
	}
	ms := longestQueueSolution(big)

	// Each auto band must route to exactly the method it advertises: the
	// answers are bit-identical to the explicit method's, not just close.
	for _, tc := range []struct {
		band string
		opts StationaryOptions
		want SolveMethod
	}{
		{"aggregation", StationaryOptions{}, MethodAggregation},
		{"sparse", StationaryOptions{AggregationThreshold: 1024}, MethodSparseIterative},
		{"dense", StationaryOptions{DenseThreshold: 1024, AggregationThreshold: 2048}, MethodDenseLU},
	} {
		auto, err := ms.StationaryUnderPolicy(tc.opts)
		if err != nil {
			t.Fatalf("%s band: %v", tc.band, err)
		}
		explicit, err := ms.StationaryUnderPolicy(StationaryOptions{Method: tc.want})
		if err != nil {
			t.Fatalf("%s explicit: %v", tc.band, err)
		}
		for s := range auto {
			if auto[s] != explicit[s] {
				t.Fatalf("auto did not take the %s path (state %d: %v vs %v)",
					tc.band, s, auto[s], explicit[s])
			}
		}
	}

	// All three methods must agree to 1e-8 at this scale.
	dense, err := ms.StationaryUnderPolicy(StationaryOptions{Method: MethodDenseLU})
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []SolveMethod{MethodSparseIterative, MethodAggregation} {
		got, err := ms.StationaryUnderPolicy(StationaryOptions{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		for s := range dense {
			if d := math.Abs(dense[s] - got[s]); d > 1e-8 {
				t.Fatalf("512-state chain: dense %v vs method %d %v at state %d (Δ=%g)",
					dense[s], method, got[s], s, d)
			}
		}
	}
	// And the small fixture must take the dense path (exact match with LU).
	small := mustModel(t, "b", 3, singleClient(2, 2))
	ssol := mustSolve(t, []*Model{small}, JointConfig{})
	sms := ssol.PerModel[0]
	sauto, err := sms.StationaryUnderPolicy(StationaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sdense, err := sms.StationaryUnderPolicy(StationaryOptions{Method: MethodDenseLU})
	if err != nil {
		t.Fatal(err)
	}
	for s := range sauto {
		if sauto[s] != sdense[s] {
			t.Fatalf("auto did not take the dense path below threshold (state %d)", s)
		}
	}
}

func TestRefineStationaryKeepsMM1KExact(t *testing.T) {
	lambda, mu := 2.0, 3.0
	m := mustModel(t, "b", mu, singleClient(lambda, 4))
	sol := mustSolve(t, []*Model{m}, JointConfig{RefineStationary: true})
	ms := sol.PerModel[0]
	q, err := queueing.NewMM1K(lambda, mu, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := q.Distribution()
	got := ms.OccupancyDistribution(0)
	for k := range want {
		if math.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("refined dist[%d] = %v, analytic %v", k, got[k], want[k])
		}
	}
	if math.Abs(sol.TotalLossRate-q.LossRate()) > 1e-9 {
		t.Fatalf("refined loss %v, analytic %v", sol.TotalLossRate, q.LossRate())
	}
}

func TestRefineStationarySmallCorrection(t *testing.T) {
	for name, m := range fixtureModels(t) {
		sol := mustSolve(t, []*Model{m}, JointConfig{})
		ms := sol.PerModel[0]
		delta, err := ms.RefineStationary(StationaryOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if delta > 1e-6 {
			t.Fatalf("%s: refinement moved a state probability by %g — LP and chain disagree", name, delta)
		}
		var sum float64
		for _, p := range ms.StateProb {
			if p < 0 {
				t.Fatalf("%s: negative refined probability %v", name, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Fatalf("%s: refined mass %v", name, sum)
		}
	}
}

func TestPolicyChainExcludesUnreachable(t *testing.T) {
	// The inert client's levels are unreachable: the restricted chain must
	// contain exactly the live client's 3 levels.
	m := mustModel(t, "b", 3, []Client{
		{BufferID: "live", Lambda: 2, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "dead", Lambda: 0, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
	})
	sol := mustSolve(t, []*Model{m}, JointConfig{})
	chain, err := sol.PerModel[0].PolicyChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(chain.States) != 3 {
		t.Fatalf("reachable states = %d, want 3 (dead client levels pruned)", len(chain.States))
	}
	for _, s := range chain.States {
		if m.Level(s, 1) != 0 {
			t.Fatalf("state %d has dead client at level %d", s, m.Level(s, 1))
		}
	}
}

func TestDemandsOptRefines(t *testing.T) {
	m := mustModel(t, "b", 4, []Client{
		{BufferID: "x", Lambda: 2, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "y", Lambda: 1, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
	})
	sol := mustSolve(t, []*Model{m}, JointConfig{})
	plain, err := Demands(sol.PerModel, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sol2 := mustSolve(t, []*Model{m}, JointConfig{})
	refined, err := DemandsOpt(sol2.PerModel, DemandsOptions{Eps: 0.05, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(refined) {
		t.Fatalf("demand count changed: %d vs %d", len(plain), len(refined))
	}
	for i := range plain {
		if plain[i].BufferID != refined[i].BufferID {
			t.Fatalf("demand order changed: %v vs %v", plain[i].BufferID, refined[i].BufferID)
		}
		if math.Abs(plain[i].MeanUnits-refined[i].MeanUnits) > 1e-6 {
			t.Fatalf("%s: refined mean %v far from plain %v", plain[i].BufferID, refined[i].MeanUnits, plain[i].MeanUnits)
		}
	}
}
