package ctmdp

import (
	"math"
	"testing"
)

func singleClient(lambda float64, levels int) []Client {
	return []Client{{
		BufferID:      "q",
		Lambda:        lambda,
		Levels:        levels,
		UnitsPerLevel: 1,
		LossWeight:    1,
	}}
}

func TestNewModelValidation(t *testing.T) {
	ok := singleClient(1, 2)
	cases := []struct {
		name    string
		bus     string
		mu      float64
		clients []Client
	}{
		{"empty bus", "", 1, ok},
		{"zero mu", "b", 0, ok},
		{"no clients", "b", 1, nil},
		{"empty buffer id", "b", 1, []Client{{Lambda: 1, Levels: 1, UnitsPerLevel: 1, LossWeight: 1}}},
		{"negative lambda", "b", 1, []Client{{BufferID: "q", Lambda: -1, Levels: 1, UnitsPerLevel: 1, LossWeight: 1}}},
		{"zero levels", "b", 1, []Client{{BufferID: "q", Lambda: 1, UnitsPerLevel: 1, LossWeight: 1}}},
		{"zero units", "b", 1, []Client{{BufferID: "q", Lambda: 1, Levels: 1, LossWeight: 1}}},
		{"zero weight", "b", 1, []Client{{BufferID: "q", Lambda: 1, Levels: 1, UnitsPerLevel: 1}}},
		{"bad pfull", "b", 1, []Client{{BufferID: "q", Lambda: 1, Levels: 1, UnitsPerLevel: 1, LossWeight: 1, DownstreamFullProb: 2}}},
		{"member mismatch", "b", 1, []Client{{BufferID: "q", Lambda: 1, Levels: 1, UnitsPerLevel: 1, LossWeight: 1, Members: []string{"x"}}}},
	}
	for _, c := range cases {
		if _, err := NewModel(c.bus, c.mu, c.clients); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestNewModelStateSpaceGuard(t *testing.T) {
	clients := make([]Client, 12)
	for i := range clients {
		clients[i] = Client{BufferID: string(rune('a' + i)), Lambda: 1, Levels: 3, UnitsPerLevel: 1, LossWeight: 1}
	}
	if _, err := NewModel("b", 1, clients); err == nil {
		t.Fatal("4^12 states accepted")
	}
}

func TestModelEnumeration(t *testing.T) {
	m, err := NewModel("b", 2, []Client{
		{BufferID: "x", Lambda: 1, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "y", Lambda: 1, Levels: 1, UnitsPerLevel: 1, LossWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 6 {
		t.Fatalf("states = %d, want 6", m.NumStates())
	}
	// Vars: state (0,0) has 1 idle var; others have #nonzero clients.
	// States: levels (x,y): (0,0)=1, (1,0)=1, (2,0)=1, (0,1)=1, (1,1)=2, (2,1)=2 → 8.
	if m.NumVars() != 8 {
		t.Fatalf("vars = %d, want 8", m.NumVars())
	}
	// Level round trip.
	for s := 0; s < m.NumStates(); s++ {
		lx, ly := m.Level(s, 0), m.Level(s, 1)
		if back := m.stateOf([]int{lx, ly}); back != s {
			t.Fatalf("state %d decodes to (%d,%d) re-encodes to %d", s, lx, ly, back)
		}
	}
}

func TestCostRate(t *testing.T) {
	m, err := NewModel("b", 3, []Client{
		{BufferID: "x", Lambda: 2, Levels: 1, UnitsPerLevel: 1, LossWeight: 1, DownstreamFullProb: 0.5},
		{BufferID: "y", Lambda: 1, Levels: 1, UnitsPerLevel: 1, LossWeight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.stateOf([]int{1, 1}) // both full
	// Arrival losses: 2·1 + 1·2 = 4; serving x adds μ·0.5·1 = 1.5.
	if got := m.CostRate(s, 0); math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("cost = %v, want 5.5", got)
	}
	if got := m.CostRate(s, 1); math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("cost serving y = %v, want 4.0", got)
	}
	empty := m.stateOf([]int{0, 0})
	if got := m.CostRate(empty, -1); got != 0 {
		t.Fatalf("cost of empty idle = %v", got)
	}
}

func TestOccupancyUnits(t *testing.T) {
	m, err := NewModel("b", 1, []Client{
		{BufferID: "x", Lambda: 1, Levels: 2, UnitsPerLevel: 10, LossWeight: 1},
		{BufferID: "y", Lambda: 1, Levels: 1, UnitsPerLevel: 4, LossWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.stateOf([]int{2, 1})
	if got := m.OccupancyUnits(s); got != 24 {
		t.Fatalf("occupancy = %v, want 24", got)
	}
}

func TestTransitions(t *testing.T) {
	m, err := NewModel("b", 5, singleClient(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// State 1, serving: arrival to 2 at rate 2, service to 0 at rate 5.
	got := map[int]float64{}
	m.transitions(1, 0, func(tgt int, rate float64) { got[tgt] += rate })
	if got[2] != 2 || got[0] != 5 || len(got) != 2 {
		t.Fatalf("transitions from (1,serve) = %v", got)
	}
	// Full state: arrival is a self-loop (omitted).
	got = map[int]float64{}
	m.transitions(2, 0, func(tgt int, rate float64) { got[tgt] += rate })
	if len(got) != 1 || got[1] != 5 {
		t.Fatalf("transitions from (2,serve) = %v", got)
	}
	// Empty, idle: only the arrival.
	got = map[int]float64{}
	m.transitions(0, -1, func(tgt int, rate float64) { got[tgt] += rate })
	if len(got) != 1 || got[1] != 2 {
		t.Fatalf("transitions from (0,idle) = %v", got)
	}
}

func TestAggregateClients(t *testing.T) {
	clients := []Client{
		{BufferID: "hot", Lambda: 5, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "warm", Lambda: 2, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "cold1", Lambda: 0.5, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "cold2", Lambda: 0.3, Levels: 1, UnitsPerLevel: 2, LossWeight: 3},
	}
	out, err := AggregateClients(clients, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d clients, want 3", len(out))
	}
	var agg *Client
	for i := range out {
		if len(out[i].Members) > 0 {
			agg = &out[i]
		}
	}
	if agg == nil {
		t.Fatal("no aggregate produced")
	}
	if math.Abs(agg.Lambda-0.8) > 1e-12 {
		t.Fatalf("aggregate lambda = %v, want 0.8", agg.Lambda)
	}
	if len(agg.Members) != 2 {
		t.Fatalf("aggregate members = %v", agg.Members)
	}
	if agg.Levels != 2 || agg.UnitsPerLevel != 2 || agg.LossWeight != 3 {
		t.Fatalf("aggregate maxima wrong: %+v", agg)
	}
	// Hot and warm survive untouched.
	names := map[string]bool{}
	for _, c := range out {
		names[c.BufferID] = true
	}
	if !names["hot"] || !names["warm"] {
		t.Fatalf("hot/warm clients lost: %v", names)
	}
}

func TestAggregateClientsNoop(t *testing.T) {
	clients := singleClient(1, 2)
	out, err := AggregateClients(clients, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].BufferID != "q" {
		t.Fatalf("noop aggregation changed clients: %+v", out)
	}
}

func TestAggregateClientsBadMax(t *testing.T) {
	if _, err := AggregateClients(singleClient(1, 1), 0); err == nil {
		t.Fatal("maxClients 0 accepted")
	}
}
