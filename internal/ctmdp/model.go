// Package ctmdp builds and solves the Continuous-Time Markov Decision
// Processes at the heart of the paper's buffer-sizing methodology.
//
// After buffer insertion splits the architecture (internal/graph), every
// subsystem is a single bus serving a set of client buffers. The subsystem's
// CTMDP is:
//
//   - state: the vector of client queue levels (each client's occupancy is
//     quantised into Levels+1 values to bound the state space; one level
//     stands for UnitsPerLevel physical buffer units),
//   - action: which non-empty client the arbiter grants (idle only when all
//     queues are empty — work conservation is optimal for loss and keeps the
//     action set small),
//   - dynamics: Poisson arrivals per client, exponential service by the bus,
//   - cost rate: the weighted loss rate — arrivals that hit a full client
//     level are lost, and a served packet is lost downstream with the
//     client's DownstreamFullProb (how bridge buffers feed the cost back).
//
// Following Feinberg 2002, the average-cost optimal (possibly constrained)
// policy is found by linear programming over state–action occupation
// measures x(s,a); see solve.go. The paper's device of solving all split
// subsystems "in one go" is the joint LP with a shared expected-occupancy
// budget row linking the subsystem blocks.
package ctmdp

import (
	"errors"
	"fmt"
)

// MaxStates bounds a single model's state space; larger requests are
// configuration errors (quantise harder or aggregate clients instead).
const MaxStates = 60000

// Client is one buffer competing for a bus inside a subsystem model.
type Client struct {
	// BufferID names the physical buffer (or the aggregate, when Members is
	// non-empty).
	BufferID string
	// Lambda is the arrival rate into the buffer (exogenous flow rate or the
	// boundary estimate for bridge buffers).
	Lambda float64
	// Levels is the maximum quantised level L; the client's occupancy in the
	// model takes values 0..L. Must be >= 1.
	Levels int
	// UnitsPerLevel converts one model level to physical buffer units.
	UnitsPerLevel float64
	// LossWeight scales this client's losses in the cost ("allowing some
	// losses to be more important than the others", §3). Default 1.
	LossWeight float64
	// DownstreamFullProb is the probability that the buffer this client's
	// packets move into next is full (0 for local delivery). Service then
	// incurs a loss cost at that rate.
	DownstreamFullProb float64
	// Members lists the physical buffers folded into this client when it is
	// an aggregate; empty for ordinary clients. MemberLambda aligns with it.
	Members      []string
	MemberLambda []float64
}

// Model is the CTMDP of one single-bus subsystem.
type Model struct {
	Bus         string
	ServiceRate float64
	Clients     []Client

	strides   []int
	numStates int
	// vars enumerates feasible (state, action) pairs; action == -1 is idle
	// (feasible only in the all-empty state).
	vars        []svar
	varsByState [][]int // state -> indices into vars
}

type svar struct {
	state  int
	action int
}

// NewModel validates and precomputes the state enumeration.
func NewModel(bus string, serviceRate float64, clients []Client) (*Model, error) {
	if bus == "" {
		return nil, errors.New("ctmdp: empty bus ID")
	}
	if serviceRate <= 0 {
		return nil, fmt.Errorf("ctmdp: bus %q service rate %v must be positive", bus, serviceRate)
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("ctmdp: bus %q has no clients", bus)
	}
	m := &Model{Bus: bus, ServiceRate: serviceRate, Clients: clients}
	m.strides = make([]int, len(clients))
	n := 1
	for i, c := range clients {
		if c.BufferID == "" {
			return nil, fmt.Errorf("ctmdp: bus %q client %d has empty buffer ID", bus, i)
		}
		if c.Lambda < 0 {
			return nil, fmt.Errorf("ctmdp: client %q lambda %v negative", c.BufferID, c.Lambda)
		}
		if c.Levels < 1 {
			return nil, fmt.Errorf("ctmdp: client %q levels %d < 1", c.BufferID, c.Levels)
		}
		if c.UnitsPerLevel <= 0 {
			return nil, fmt.Errorf("ctmdp: client %q units-per-level %v must be positive", c.BufferID, c.UnitsPerLevel)
		}
		if c.LossWeight <= 0 {
			return nil, fmt.Errorf("ctmdp: client %q loss weight %v must be positive", c.BufferID, c.LossWeight)
		}
		if c.DownstreamFullProb < 0 || c.DownstreamFullProb > 1 {
			return nil, fmt.Errorf("ctmdp: client %q downstream full prob %v outside [0,1]", c.BufferID, c.DownstreamFullProb)
		}
		if len(c.Members) != len(c.MemberLambda) {
			return nil, fmt.Errorf("ctmdp: client %q members/lambdas length mismatch", c.BufferID)
		}
		m.strides[i] = n
		n *= c.Levels + 1
		if n > MaxStates {
			return nil, fmt.Errorf("ctmdp: bus %q state space exceeds %d states", bus, MaxStates)
		}
	}
	m.numStates = n
	m.enumerate()
	return m, nil
}

// NumStates returns the size of the state space.
func (m *Model) NumStates() int { return m.numStates }

// NumVars returns the number of (state, action) occupation variables.
func (m *Model) NumVars() int { return len(m.vars) }

// VarStateAction returns the (state, action) pair of occupation variable v;
// action -1 is idle. The enumeration is deterministic for a given client
// order, which is what lets solve caches align occupation measures across
// structurally identical models.
func (m *Model) VarStateAction(v int) (state, action int) {
	sv := m.vars[v]
	return sv.state, sv.action
}

// StateVars returns the occupation-variable indices of state s. The returned
// slice is the model's own enumeration and must not be mutated.
func (m *Model) StateVars(s int) []int { return m.varsByState[s] }

// VarIndex returns the occupation-variable index of (state, action), or
// false when that pair is infeasible in the enumeration.
func (m *Model) VarIndex(state, action int) (int, bool) {
	for _, v := range m.varsByState[state] {
		if m.vars[v].action == action {
			return v, true
		}
	}
	return -1, false
}

// StateOf composes a state index from a per-client level vector (the inverse
// of Level). The vector must have one entry per client, each within the
// client's 0..Levels range.
func (m *Model) StateOf(levels []int) (int, error) {
	if len(levels) != len(m.Clients) {
		return 0, fmt.Errorf("ctmdp: level vector has %d entries, model has %d clients", len(levels), len(m.Clients))
	}
	for c, l := range levels {
		if l < 0 || l > m.Clients[c].Levels {
			return 0, fmt.Errorf("ctmdp: level %d outside client %d's range [0,%d]", l, c, m.Clients[c].Levels)
		}
	}
	return m.stateOf(levels), nil
}

// Level returns client c's level in state s.
func (m *Model) Level(s, c int) int {
	return (s / m.strides[c]) % (m.Clients[c].Levels + 1)
}

// stateOf composes a state index from a level vector.
func (m *Model) stateOf(levels []int) int {
	s := 0
	for c, l := range levels {
		s += l * m.strides[c]
	}
	return s
}

// enumerate builds the feasible (state, action) list.
func (m *Model) enumerate() {
	m.varsByState = make([][]int, m.numStates)
	for s := 0; s < m.numStates; s++ {
		nonEmpty := false
		for c := range m.Clients {
			if m.Level(s, c) > 0 {
				nonEmpty = true
				m.vars = append(m.vars, svar{state: s, action: c})
				m.varsByState[s] = append(m.varsByState[s], len(m.vars)-1)
			}
		}
		if !nonEmpty {
			m.vars = append(m.vars, svar{state: s, action: -1})
			m.varsByState[s] = append(m.varsByState[s], len(m.vars)-1)
		}
	}
}

// CostRate returns the instantaneous cost rate of (state, action): weighted
// loss from arrivals hitting full levels, plus downstream loss of the served
// client.
func (m *Model) CostRate(s, action int) float64 {
	var cost float64
	for c, cl := range m.Clients {
		if m.Level(s, c) == cl.Levels {
			cost += cl.Lambda * cl.LossWeight
		}
	}
	if action >= 0 {
		cl := m.Clients[action]
		cost += m.ServiceRate * cl.DownstreamFullProb * cl.LossWeight
	}
	return cost
}

// OccupancyUnits returns the physical units held in state s:
// Σ_c level_c · UnitsPerLevel_c.
func (m *Model) OccupancyUnits(s int) float64 {
	var occ float64
	for c, cl := range m.Clients {
		occ += float64(m.Level(s, c)) * cl.UnitsPerLevel
	}
	return occ
}

// transitions invokes fn(target, rate) for every outgoing transition of
// (state, action). Self-loops (arrivals at full levels) are omitted: they
// cancel in the balance equations.
func (m *Model) transitions(s, action int, fn func(target int, rate float64)) {
	for c, cl := range m.Clients {
		if cl.Lambda > 0 && m.Level(s, c) < cl.Levels {
			fn(s+m.strides[c], cl.Lambda)
		}
	}
	if action >= 0 && m.Level(s, action) > 0 {
		fn(s-m.strides[action], m.ServiceRate)
	}
}

// AggregateClients folds the lowest-rate clients of a raw client list into a
// single aggregate until at most maxClients remain. The aggregate's rate is
// the sum of member rates, its levels/units/weight come from the member
// maxima, and Members/MemberLambda record the composition so allocations can
// be split back out. A list already within the limit is returned unchanged.
func AggregateClients(clients []Client, maxClients int) ([]Client, error) {
	if maxClients < 1 {
		return nil, fmt.Errorf("ctmdp: maxClients %d < 1", maxClients)
	}
	if len(clients) <= maxClients {
		return clients, nil
	}
	// Sort indices by rate ascending; fold the coldest len-maxClients+1 into
	// one aggregate.
	idx := make([]int, len(clients))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if clients[idx[j]].Lambda < clients[idx[i]].Lambda {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	nFold := len(clients) - maxClients + 1
	fold := map[int]bool{}
	for _, i := range idx[:nFold] {
		fold[i] = true
	}
	agg := Client{BufferID: "agg(" + clients[idx[0]].BufferID + "+)", LossWeight: 0, UnitsPerLevel: 0}
	var out []Client
	for i, c := range clients {
		if !fold[i] {
			out = append(out, c)
			continue
		}
		agg.Lambda += c.Lambda
		if c.Levels > agg.Levels {
			agg.Levels = c.Levels
		}
		if c.UnitsPerLevel > agg.UnitsPerLevel {
			agg.UnitsPerLevel = c.UnitsPerLevel
		}
		if c.LossWeight > agg.LossWeight {
			agg.LossWeight = c.LossWeight
		}
		if c.DownstreamFullProb > agg.DownstreamFullProb {
			agg.DownstreamFullProb = c.DownstreamFullProb
		}
		if len(c.Members) > 0 {
			agg.Members = append(agg.Members, c.Members...)
			agg.MemberLambda = append(agg.MemberLambda, c.MemberLambda...)
		} else {
			agg.Members = append(agg.Members, c.BufferID)
			agg.MemberLambda = append(agg.MemberLambda, c.Lambda)
		}
	}
	if agg.Levels == 0 {
		agg.Levels = 1
	}
	if agg.LossWeight == 0 {
		agg.LossWeight = 1
	}
	if agg.UnitsPerLevel == 0 {
		agg.UnitsPerLevel = 1
	}
	out = append(out, agg)
	return out, nil
}
