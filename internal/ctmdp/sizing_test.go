package ctmdp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func demandsFor(t *testing.T) []BufferDemand {
	t.Helper()
	m := mustModel(t, "b", 4, []Client{
		{BufferID: "hot", Lambda: 3.0, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "cold", Lambda: 0.3, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
	})
	sol := mustSolve(t, []*Model{m}, JointConfig{})
	d, err := Demands(sol.PerModel, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDemandsBasics(t *testing.T) {
	d := demandsFor(t)
	if len(d) != 2 {
		t.Fatalf("demands = %+v", d)
	}
	byID := map[string]BufferDemand{}
	for _, x := range d {
		byID[x.BufferID] = x
	}
	hot, cold := byID["hot"], byID["cold"]
	if hot.Lambda != 3.0 || cold.Lambda != 0.3 {
		t.Fatalf("lambdas wrong: %+v", d)
	}
	if hot.TailRatio <= cold.TailRatio {
		t.Fatalf("hot tail %v should exceed cold tail %v", hot.TailRatio, cold.TailRatio)
	}
	for _, x := range d {
		if x.TailRatio < minTail-1e-12 || x.TailRatio > maxTail+1e-12 {
			t.Fatalf("tail ratio %v out of range", x.TailRatio)
		}
		if x.Quantile < 0 || x.MeanUnits < 0 {
			t.Fatalf("negative demand stats: %+v", x)
		}
	}
}

func TestDemandsBadEps(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5} {
		if _, err := Demands(nil, eps); err == nil {
			t.Fatalf("eps %v accepted", eps)
		}
	}
}

func TestDemandsAggregateSplit(t *testing.T) {
	clients := []Client{
		{BufferID: "hot", Lambda: 4, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "agg", Lambda: 0.9, Levels: 2, UnitsPerLevel: 1, LossWeight: 1,
			Members: []string{"m1", "m2"}, MemberLambda: []float64{0.6, 0.3}},
	}
	m := mustModel(t, "b", 5, clients)
	sol := mustSolve(t, []*Model{m}, JointConfig{})
	d, err := Demands(sol.PerModel, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 3 {
		t.Fatalf("want 3 buffers (hot, m1, m2), got %+v", d)
	}
	byID := map[string]BufferDemand{}
	for _, x := range d {
		byID[x.BufferID] = x
	}
	if _, ok := byID["agg"]; ok {
		t.Fatal("aggregate leaked into demands")
	}
	if byID["m1"].Lambda != 0.6 || byID["m2"].Lambda != 0.3 {
		t.Fatalf("member lambdas wrong: %+v", d)
	}
	// Member shares of the aggregate's mean: 2:1.
	if byID["m2"].MeanUnits <= 0 {
		t.Fatalf("m2 mean units = %v", byID["m2"].MeanUnits)
	}
	ratio := byID["m1"].MeanUnits / byID["m2"].MeanUnits
	if math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("member mean split ratio = %v, want 2", ratio)
	}
}

func TestDemandsDuplicateBuffer(t *testing.T) {
	m1 := mustModel(t, "b1", 2, singleClient(1, 1))
	m2 := mustModel(t, "b2", 2, singleClient(1, 1)) // same buffer ID "q"
	s1 := mustSolve(t, []*Model{m1}, JointConfig{})
	s2 := mustSolve(t, []*Model{m2}, JointConfig{})
	if _, err := Demands([]*ModelSolution{s1.PerModel[0], s2.PerModel[0]}, 0.05); err == nil {
		t.Fatal("duplicate buffer accepted")
	}
}

func TestTranslateGreedyFavoursHot(t *testing.T) {
	d := demandsFor(t)
	alloc, err := Translate(d, 20, TranslateGreedyTail)
	if err != nil {
		t.Fatal(err)
	}
	if alloc["hot"]+alloc["cold"] != 20 {
		t.Fatalf("budget not exhausted: %v", alloc)
	}
	if alloc["hot"] <= alloc["cold"] {
		t.Fatalf("greedy gave hot %d <= cold %d", alloc["hot"], alloc["cold"])
	}
	if alloc["cold"] < 1 {
		t.Fatalf("cold below floor: %v", alloc)
	}
}

func TestTranslateAllMethodsExhaustBudget(t *testing.T) {
	d := demandsFor(t)
	for _, how := range []Translator{TranslateGreedyTail, TranslateQuantile, TranslateMeanOccupancy} {
		alloc, err := Translate(d, 17, how)
		if err != nil {
			t.Fatalf("method %d: %v", how, err)
		}
		total := 0
		for _, v := range alloc {
			if v < 1 {
				t.Fatalf("method %d: allocation below floor: %v", how, alloc)
			}
			total += v
		}
		if total != 17 {
			t.Fatalf("method %d: total %d != 17", how, total)
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	d := demandsFor(t)
	if _, err := Translate(nil, 10, TranslateGreedyTail); err == nil {
		t.Fatal("empty demands accepted")
	}
	if _, err := Translate(d, 1, TranslateGreedyTail); err == nil {
		t.Fatal("budget below floor accepted")
	}
	if _, err := Translate(d, 10, Translator(99)); err == nil {
		t.Fatal("unknown translator accepted")
	}
}

func TestTranslateZeroScoresDegenerate(t *testing.T) {
	d := []BufferDemand{
		{BufferID: "a", Lambda: 0, TailRatio: minTail},
		{BufferID: "b", Lambda: 0, TailRatio: minTail},
		{BufferID: "c", Lambda: 0, TailRatio: minTail},
	}
	alloc, err := Translate(d, 10, TranslateMeanOccupancy)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range alloc {
		total += v
	}
	if total != 10 {
		t.Fatalf("degenerate apportion total %d", total)
	}
}

// Property: greedy translation is monotone — a hotter buffer (higher λ, same
// tail) never receives less than a colder one.
func TestGreedyMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		d := make([]BufferDemand, n)
		tail := 0.3 + rng.Float64()*0.5
		for i := range d {
			d[i] = BufferDemand{
				BufferID:  string(rune('a' + i)),
				Lambda:    0.1 + rng.Float64()*5,
				TailRatio: tail,
			}
		}
		budget := n + rng.Intn(100)
		alloc, err := Translate(d, budget, TranslateGreedyTail)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i].Lambda > d[j].Lambda && alloc[d[i].BufferID] < alloc[d[j].BufferID] {
					return false
				}
			}
		}
		total := 0
		for _, v := range alloc {
			total += v
		}
		return total == budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
