package ctmdp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"socbuf/internal/queueing"
)

func mustModel(t *testing.T, bus string, mu float64, clients []Client) *Model {
	t.Helper()
	m, err := NewModel(bus, mu, clients)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustSolve(t *testing.T, models []*Model, cfg JointConfig) *JointSolution {
	t.Helper()
	sol, err := SolveJoint(models, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSingleClientMatchesMM1K(t *testing.T) {
	lambda, mu := 2.0, 3.0
	for _, levels := range []int{1, 2, 4} {
		m := mustModel(t, "b", mu, singleClient(lambda, levels))
		sol := mustSolve(t, []*Model{m}, JointConfig{})
		ms := sol.PerModel[0]

		q, err := queueing.NewMM1K(lambda, mu, levels)
		if err != nil {
			t.Fatal(err)
		}
		want := q.Distribution()
		got := ms.OccupancyDistribution(0)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-6 {
				t.Fatalf("levels=%d: dist[%d] = %v, want %v", levels, k, got[k], want[k])
			}
		}
		if math.Abs(ms.FullProbability(0)-q.Blocking()) > 1e-6 {
			t.Fatalf("levels=%d: full prob %v vs blocking %v", levels, ms.FullProbability(0), q.Blocking())
		}
		if math.Abs(sol.TotalLossRate-q.LossRate()) > 1e-6 {
			t.Fatalf("levels=%d: loss rate %v vs analytic %v", levels, sol.TotalLossRate, q.LossRate())
		}
		if math.Abs(ms.Throughput(0)-q.Throughput()) > 1e-6 {
			t.Fatalf("levels=%d: throughput %v vs analytic %v", levels, ms.Throughput(0), q.Throughput())
		}
	}
}

func TestStateProbIsDistribution(t *testing.T) {
	m := mustModel(t, "b", 4, []Client{
		{BufferID: "x", Lambda: 2, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "y", Lambda: 1, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
	})
	sol := mustSolve(t, []*Model{m}, JointConfig{})
	var sum float64
	for _, p := range sol.PerModel[0].StateProb {
		if p < -1e-9 {
			t.Fatalf("negative state probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-7 {
		t.Fatalf("state probabilities sum to %v", sum)
	}
}

func TestPermutationInvariantObjective(t *testing.T) {
	// LP vertex optima need not be symmetric for symmetric inputs, but the
	// optimal VALUE must be invariant under permuting the clients.
	a := Client{BufferID: "x", Lambda: 2.2, Levels: 2, UnitsPerLevel: 1, LossWeight: 1}
	b := Client{BufferID: "y", Lambda: 0.9, Levels: 2, UnitsPerLevel: 1, LossWeight: 1}
	m1 := mustModel(t, "b", 4, []Client{a, b})
	m2 := mustModel(t, "b", 4, []Client{b, a})
	s1 := mustSolve(t, []*Model{m1}, JointConfig{})
	s2 := mustSolve(t, []*Model{m2}, JointConfig{})
	if math.Abs(s1.TotalLossRate-s2.TotalLossRate) > 1e-7 {
		t.Fatalf("objective not permutation invariant: %v vs %v", s1.TotalLossRate, s2.TotalLossRate)
	}
}

func TestOptimalBeatsBadWeighting(t *testing.T) {
	// With one hot and one cold client, the optimal loss must be at most the
	// loss of the same system when the objective is solved with inverted
	// weights and then evaluated under true weights. Cheap sanity that the
	// LP actually optimises.
	hotCold := []Client{
		{BufferID: "hot", Lambda: 3, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "cold", Lambda: 0.3, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
	}
	m := mustModel(t, "b", 3.5, hotCold)
	sol := mustSolve(t, []*Model{m}, JointConfig{})

	inverted := []Client{
		{BufferID: "hot", Lambda: 3, Levels: 2, UnitsPerLevel: 1, LossWeight: 0.01},
		{BufferID: "cold", Lambda: 0.3, Levels: 2, UnitsPerLevel: 1, LossWeight: 100},
	}
	mInv := mustModel(t, "b", 3.5, inverted)
	solInv := mustSolve(t, []*Model{mInv}, JointConfig{})
	msInv := solInv.PerModel[0]
	// Evaluate the inverted policy's measure under true weights.
	var trueLoss float64
	for c := range inverted {
		trueLoss += msInv.ModelLossRate(c)
	}
	var optLoss float64
	for c := range hotCold {
		optLoss += sol.PerModel[0].ModelLossRate(c)
	}
	if optLoss > trueLoss+1e-7 {
		t.Fatalf("optimal loss %v worse than mis-weighted policy loss %v", optLoss, trueLoss)
	}
}

func TestOccupancyCapBindsAndCosts(t *testing.T) {
	// Asymmetric UnitsPerLevel makes the occupancy range wide: holding the
	// same packets in x costs 5× the units of y, so a capped solve shifts
	// queueing toward y (and, at the margin, admits less).
	clients := []Client{
		{BufferID: "x", Lambda: 2.0, Levels: 2, UnitsPerLevel: 5, LossWeight: 1},
		{BufferID: "y", Lambda: 2.0, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
	}
	m := mustModel(t, "b", 4.5, clients)
	free := mustSolve(t, []*Model{m}, JointConfig{})
	if free.CapBinding {
		t.Fatal("unconstrained solve reports binding cap")
	}
	capLevel := free.OccupancyUsed * 0.9
	capped := mustSolve(t, []*Model{m}, JointConfig{OccupancyCap: capLevel})
	if !capped.CapBinding {
		t.Fatalf("cap at 90%% of free occupancy (%v) did not bind (used %v)",
			capLevel, capped.OccupancyUsed)
	}
	if capped.TotalLossRate < free.TotalLossRate-1e-9 {
		t.Fatalf("constrained loss %v below unconstrained %v", capped.TotalLossRate, free.TotalLossRate)
	}
	if capped.OccupancyUsed > capLevel+1e-6 {
		t.Fatalf("cap violated: used %v > %v", capped.OccupancyUsed, capLevel)
	}
}

func TestInfeasibleOccupancyCap(t *testing.T) {
	// Overloaded queue: its expected occupancy cannot be pushed near zero.
	m := mustModel(t, "b", 1, singleClient(5, 3))
	_, err := SolveJoint([]*Model{m}, JointConfig{OccupancyCap: 1e-4})
	if err == nil {
		t.Fatal("absurd occupancy cap accepted")
	}
}

func TestSequentialMatchesJointWithoutCap(t *testing.T) {
	m1 := mustModel(t, "b1", 4, []Client{
		{BufferID: "x", Lambda: 2, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "y", Lambda: 1, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
	})
	m2 := mustModel(t, "b2", 3, singleClient(2, 3))
	joint := mustSolve(t, []*Model{m1, m2}, JointConfig{})
	seq := mustSolve(t, []*Model{m1, m2}, JointConfig{Sequential: true})
	if math.Abs(joint.TotalLossRate-seq.TotalLossRate) > 1e-6 {
		t.Fatalf("joint %v vs sequential %v without cap", joint.TotalLossRate, seq.TotalLossRate)
	}
}

func TestSequentialRejectsCap(t *testing.T) {
	m := mustModel(t, "b", 2, singleClient(1, 1))
	if _, err := SolveJoint([]*Model{m}, JointConfig{Sequential: true, OccupancyCap: 5}); err == nil {
		t.Fatal("sequential with cap accepted")
	}
}

func TestSolveNoModels(t *testing.T) {
	if _, err := SolveJoint(nil, JointConfig{}); err == nil {
		t.Fatal("empty model list accepted")
	}
}

func TestZeroLambdaClientIsInert(t *testing.T) {
	m := mustModel(t, "b", 3, []Client{
		{BufferID: "live", Lambda: 2, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
		{BufferID: "dead", Lambda: 0, Levels: 2, UnitsPerLevel: 1, LossWeight: 1},
	})
	sol := mustSolve(t, []*Model{m}, JointConfig{})
	ms := sol.PerModel[0]
	if ms.Throughput(1) > 1e-9 {
		t.Fatalf("inert client has throughput %v", ms.Throughput(1))
	}
	dist := ms.OccupancyDistribution(1)
	if math.Abs(dist[0]-1) > 1e-7 {
		t.Fatalf("inert client occupancy dist = %v", dist)
	}
}

// Property: for random single-bus models, the solved stationary distribution
// is a valid probability distribution, loss rate is non-negative and at most
// the total offered rate, and throughput per client never exceeds lambda.
func TestSolveSanityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := 1 + rng.Intn(3)
		clients := make([]Client, nc)
		var offered float64
		for i := range clients {
			lam := 0.2 + rng.Float64()*3
			offered += lam
			clients[i] = Client{
				BufferID:      string(rune('a' + i)),
				Lambda:        lam,
				Levels:        1 + rng.Intn(2),
				UnitsPerLevel: 1,
				LossWeight:    1,
			}
		}
		m, err := NewModel("b", 0.5+rng.Float64()*5, clients)
		if err != nil {
			return false
		}
		sol, err := SolveJoint([]*Model{m}, JointConfig{})
		if err != nil {
			return false
		}
		ms := sol.PerModel[0]
		var sum float64
		for _, p := range ms.StateProb {
			if p < -1e-8 {
				return false
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			return false
		}
		if sol.TotalLossRate < -1e-8 || sol.TotalLossRate > offered+1e-6 {
			return false
		}
		for c := range clients {
			th := ms.Throughput(c)
			if th < -1e-8 || th > clients[c].Lambda+1e-6 {
				return false
			}
			// Flow balance per client: throughput = accepted rate =
			// λ(1 − P(full)).
			accepted := clients[c].Lambda * (1 - ms.FullProbability(c))
			if math.Abs(th-accepted) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
