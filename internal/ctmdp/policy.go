package ctmdp

import (
	"fmt"
	"sort"
	"strings"
)

// randTol: an action needs at least this much conditional probability before
// the state counts as randomised (filters simplex roundoff).
const randTol = 1e-6

// Policy is a stationary arbitration policy for one subsystem: a distribution
// over grant actions per state. States never visited under the optimal
// measure (StateProb ≈ 0) fall back to longest-queue at decision time.
type Policy struct {
	Model *Model
	// ActionProb[s][c] is the conditional probability of granting client c
	// in state s. Rows of unvisited states are all zero.
	ActionProb [][]float64
	// Visited[s] reports whether state s carries stationary mass.
	Visited []bool
}

// extractPolicy converts an occupation measure into the conditional policy
// φ(a|s) = x(s,a)/Σ_a' x(s,a').
func extractPolicy(m *Model, x []float64) *Policy {
	p := &Policy{
		Model:      m,
		ActionProb: make([][]float64, m.numStates),
		Visited:    make([]bool, m.numStates),
	}
	for s := 0; s < m.numStates; s++ {
		p.ActionProb[s] = make([]float64, len(m.Clients))
		var mass float64
		for _, v := range m.varsByState[s] {
			mass += x[v]
		}
		if mass <= 1e-12 {
			continue
		}
		p.Visited[s] = true
		for _, v := range m.varsByState[s] {
			if a := m.vars[v].action; a >= 0 {
				p.ActionProb[s][a] = x[v] / mass
			}
		}
	}
	return p
}

// Action returns the action distribution at the state with the given client
// levels. For unvisited (or out-of-range, clamped) states it falls back to
// granting the longest queue deterministically. The returned slice must not
// be mutated.
func (p *Policy) Action(levels []int) ([]float64, error) {
	m := p.Model
	if len(levels) != len(m.Clients) {
		return nil, fmt.Errorf("ctmdp: level vector has %d entries, model has %d clients", len(levels), len(m.Clients))
	}
	clamped := make([]int, len(levels))
	for c, l := range levels {
		if l < 0 {
			return nil, fmt.Errorf("ctmdp: negative level %d for client %d", l, c)
		}
		if l > m.Clients[c].Levels {
			l = m.Clients[c].Levels
		}
		clamped[c] = l
	}
	s := m.stateOf(clamped)
	if p.Visited[s] {
		// Verify the policy row grants a non-empty client; numerical dust on
		// empty clients is possible only through bugs, so trust it.
		return p.ActionProb[s], nil
	}
	// Fallback: longest queue among non-empty.
	out := make([]float64, len(m.Clients))
	best, bestLvl := -1, 0
	for c, l := range clamped {
		if l > bestLvl {
			best, bestLvl = c, l
		}
	}
	if best >= 0 {
		out[best] = 1
	}
	return out, nil
}

// RandomisedState describes one state where the optimal policy randomises.
type RandomisedState struct {
	State   int
	Levels  []int
	Actions map[int]float64 // client index -> conditional probability
}

// Switching is the K-switching structure of a constrained-optimal policy
// (Feinberg 2002): the policy is deterministic everywhere except in a small
// set of randomised states — at most one per active constraint beyond the
// per-model normalisations in exact arithmetic.
type Switching struct {
	Randomised []RandomisedState
	// BasePolicy[s] is the deterministic majority action per visited state
	// (argmax of the conditional distribution, -1 for idle/unvisited).
	BasePolicy []int
}

// KSwitching analyses the policy's randomisation structure.
func (p *Policy) KSwitching() *Switching {
	m := p.Model
	sw := &Switching{BasePolicy: make([]int, m.numStates)}
	for s := 0; s < m.numStates; s++ {
		sw.BasePolicy[s] = -1
		if !p.Visited[s] {
			continue
		}
		best, bestP := -1, 0.0
		support := map[int]float64{}
		for c, pr := range p.ActionProb[s] {
			if pr > randTol {
				support[c] = pr
			}
			if pr > bestP {
				best, bestP = c, pr
			}
		}
		sw.BasePolicy[s] = best
		if len(support) >= 2 {
			levels := make([]int, len(m.Clients))
			for c := range m.Clients {
				levels[c] = m.Level(s, c)
			}
			sw.Randomised = append(sw.Randomised, RandomisedState{
				State:   s,
				Levels:  levels,
				Actions: support,
			})
		}
	}
	sort.Slice(sw.Randomised, func(i, j int) bool { return sw.Randomised[i].State < sw.Randomised[j].State })
	return sw
}

// String summarises the switching structure.
func (sw *Switching) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "randomised states: %d", len(sw.Randomised))
	for _, r := range sw.Randomised {
		fmt.Fprintf(&sb, "; state %v:", r.Levels)
		keys := make([]int, 0, len(r.Actions))
		for c := range r.Actions {
			keys = append(keys, c)
		}
		sort.Ints(keys)
		for _, c := range keys {
			fmt.Fprintf(&sb, " a%d=%.3f", c, r.Actions[c])
		}
	}
	return sb.String()
}
