// Package graph analyses the bus topology of an architecture and implements
// the paper's subsystem splitting (§2, Figure 2): buses connected by
// *buffered* bridges no longer interact directly — each side sees only a
// buffer — so the architecture decomposes into independent subsystems whose
// stationary equations are linear. Un-buffered bridges keep buses coupled;
// those coupled groups are exactly where the quadratic terms of the paper's
// original formulation live.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"socbuf/internal/arch"
)

// ErrTopology is wrapped by topology-level failures.
var ErrTopology = errors.New("graph: invalid topology")

// Subsystem is one independent analysis unit after splitting: a set of buses
// mutually reachable through un-buffered bridges, together with the buffers
// its arbiters serve and the buffered bridges on its boundary.
type Subsystem struct {
	// Buses in this subsystem, sorted. A fully buffered architecture has
	// exactly one bus per subsystem.
	Buses []string
	// Clients maps each bus to the sorted buffer IDs its arbiter serves
	// (processor egress buffers and draining bridge buffers).
	Clients map[string][]string
	// BoundaryBridges lists the buffered bridges connecting this subsystem
	// to others, sorted by bridge ID.
	BoundaryBridges []string
	// InternalBridges lists un-buffered bridges inside the subsystem (these
	// are what make the subsystem's equations quadratic), sorted.
	InternalBridges []string
}

// Linear reports whether the subsystem's stationary equations are linear,
// i.e. it contains no un-buffered bridge.
func (s *Subsystem) Linear() bool { return len(s.InternalBridges) == 0 }

// Split partitions the architecture into subsystems: connected components of
// the bus graph restricted to un-buffered bridge edges. The result is sorted
// by the first bus ID of each subsystem, so it is deterministic.
func Split(a *arch.Architecture) ([]Subsystem, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	clients, err := a.BusClients()
	if err != nil {
		return nil, err
	}

	// Union of buses through un-buffered bridges.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, b := range a.Buses {
		parent[b.ID] = b.ID
	}
	for _, br := range a.Bridges {
		if br.Buffered {
			continue
		}
		ra, rb := find(br.BusA), find(br.BusB)
		if ra != rb {
			parent[ra] = rb
		}
	}

	groups := map[string][]string{}
	for _, b := range a.Buses {
		r := find(b.ID)
		groups[r] = append(groups[r], b.ID)
	}

	var subs []Subsystem
	for _, buses := range groups {
		sort.Strings(buses)
		inGroup := map[string]bool{}
		for _, b := range buses {
			inGroup[b] = true
		}
		s := Subsystem{Buses: buses, Clients: map[string][]string{}}
		for _, b := range buses {
			s.Clients[b] = clients[b]
		}
		for _, br := range a.Bridges {
			touches := inGroup[br.BusA] || inGroup[br.BusB]
			if !touches {
				continue
			}
			if br.Buffered {
				s.BoundaryBridges = append(s.BoundaryBridges, br.ID)
			} else {
				s.InternalBridges = append(s.InternalBridges, br.ID)
			}
		}
		sort.Strings(s.BoundaryBridges)
		sort.Strings(s.InternalBridges)
		subs = append(subs, s)
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].Buses[0] < subs[j].Buses[0] })
	return subs, nil
}

// VerifyPartition checks that subs is a partition of the architecture's
// buses: every bus appears in exactly one subsystem. Used by tests and by
// the core methodology as a defensive invariant.
func VerifyPartition(a *arch.Architecture, subs []Subsystem) error {
	seen := map[string]int{}
	for i, s := range subs {
		for _, b := range s.Buses {
			if prev, dup := seen[b]; dup {
				return fmt.Errorf("%w: bus %q in subsystems %d and %d", ErrTopology, b, prev, i)
			}
			seen[b] = i
		}
	}
	for _, b := range a.Buses {
		if _, ok := seen[b.ID]; !ok {
			return fmt.Errorf("%w: bus %q missing from every subsystem", ErrTopology, b.ID)
		}
	}
	if len(seen) != len(a.Buses) {
		return fmt.Errorf("%w: subsystems mention %d buses, architecture has %d", ErrTopology, len(seen), len(a.Buses))
	}
	return nil
}

// CoupledGroups returns the subsystems that are *not* linear — the groups of
// buses still coupled through un-buffered bridges. The paper's §2 problem
// statement is exactly that these groups produce quadratic equations.
func CoupledGroups(a *arch.Architecture) ([]Subsystem, error) {
	subs, err := Split(a)
	if err != nil {
		return nil, err
	}
	var out []Subsystem
	for _, s := range subs {
		if !s.Linear() {
			out = append(out, s)
		}
	}
	return out, nil
}
