package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"socbuf/internal/arch"
)

func TestSplitUnbuffered(t *testing.T) {
	// Figure 1 before buffer insertion: b,f,g are coupled, a is alone.
	a := arch.Figure1()
	subs, err := Split(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("got %d subsystems, want 2 (a alone, bfg coupled): %+v", len(subs), subs)
	}
	if err := VerifyPartition(a, subs); err != nil {
		t.Fatal(err)
	}
	var coupled *Subsystem
	for i := range subs {
		if len(subs[i].Buses) == 3 {
			coupled = &subs[i]
		}
	}
	if coupled == nil {
		t.Fatalf("no 3-bus coupled group: %+v", subs)
	}
	if coupled.Linear() {
		t.Fatal("coupled group claims to be linear")
	}
	if len(coupled.InternalBridges) != 2 {
		t.Fatalf("internal bridges = %v, want [br1 br2]", coupled.InternalBridges)
	}
}

func TestSplitAfterInsertion(t *testing.T) {
	// The paper's result: after buffer insertion Figure 1 splits into 4
	// linear subsystems, one per bus.
	a := arch.Figure1()
	a.InsertBridgeBuffers()
	subs, err := Split(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 4 {
		t.Fatalf("got %d subsystems, want 4", len(subs))
	}
	if err := VerifyPartition(a, subs); err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if !s.Linear() {
			t.Fatalf("subsystem %v not linear after insertion", s.Buses)
		}
		if len(s.Buses) != 1 {
			t.Fatalf("subsystem has %d buses, want 1", len(s.Buses))
		}
	}
	// Bus b's subsystem must see br1 as a boundary bridge.
	for _, s := range subs {
		if s.Buses[0] == "b" {
			if len(s.BoundaryBridges) != 1 || s.BoundaryBridges[0] != "br1" {
				t.Fatalf("bus b boundary = %v", s.BoundaryBridges)
			}
		}
		if s.Buses[0] == "f" {
			if len(s.BoundaryBridges) != 2 {
				t.Fatalf("bus f boundary = %v, want both bridges", s.BoundaryBridges)
			}
		}
	}
}

func TestSplitClientsPropagated(t *testing.T) {
	a := arch.Figure1()
	a.InsertBridgeBuffers()
	subs, err := Split(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if s.Buses[0] != "f" {
			continue
		}
		cl := s.Clients["f"]
		if len(cl) != 3 {
			t.Fatalf("bus f clients = %v, want 3", cl)
		}
	}
}

func TestCoupledGroups(t *testing.T) {
	a := arch.Figure1()
	groups, err := CoupledGroups(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("coupled groups = %d, want 1", len(groups))
	}
	a.InsertBridgeBuffers()
	groups, err = CoupledGroups(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("coupled groups after insertion = %d, want 0", len(groups))
	}
}

func TestSplitInvalidArch(t *testing.T) {
	if _, err := Split(&arch.Architecture{}); err == nil {
		t.Fatal("invalid architecture accepted")
	}
}

func TestVerifyPartitionCatchesErrors(t *testing.T) {
	a := arch.Figure1()
	a.InsertBridgeBuffers()
	subs, err := Split(a)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate a bus.
	dup := append([]Subsystem{}, subs...)
	dup = append(dup, subs[0])
	if err := VerifyPartition(a, dup); err == nil {
		t.Fatal("duplicate bus accepted")
	}
	// Drop a subsystem.
	if err := VerifyPartition(a, subs[:len(subs)-1]); err == nil {
		t.Fatal("missing bus accepted")
	}
}

// Property: on random bus-chain architectures with random buffered flags, the
// split is always a partition, subsystem count equals (#buses − #unbuffered
// bridges that join distinct groups), and every subsystem marked Linear has
// no internal bridges.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := &arch.Architecture{Name: "chain"}
		for i := 0; i < n; i++ {
			a.Buses = append(a.Buses, arch.Bus{ID: string(rune('A' + i)), ServiceRate: 1 + rng.Float64()})
			a.Processors = append(a.Processors, arch.Processor{
				ID:    "proc" + string(rune('A'+i)),
				Buses: []string{string(rune('A' + i))},
			})
		}
		unbufferedJoins := 0
		for i := 0; i < n-1; i++ {
			buffered := rng.Intn(2) == 0
			if !buffered {
				unbufferedJoins++ // chain: every unbuffered bridge merges two groups
			}
			a.Bridges = append(a.Bridges, arch.Bridge{
				ID:       "br" + string(rune('A'+i)),
				BusA:     string(rune('A' + i)),
				BusB:     string(rune('A' + i + 1)),
				Buffered: buffered,
			})
		}
		// One flow across the whole chain keeps everything routable.
		a.Flows = []arch.Flow{{From: "procA", To: "proc" + string(rune('A'+n-1)), Rate: 1}}
		subs, err := Split(a)
		if err != nil {
			return false
		}
		if err := VerifyPartition(a, subs); err != nil {
			return false
		}
		if len(subs) != n-unbufferedJoins {
			return false
		}
		for _, s := range subs {
			if s.Linear() != (len(s.InternalBridges) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
