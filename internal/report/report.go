// Package report renders the experiment outputs: ASCII bar charts in the
// shape of the paper's Figure 3 and aligned tables in the shape of Table 1,
// plus CSV for downstream plotting.
package report

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// BarGroup is one x-axis position (one processor) with one value per series.
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart renders grouped horizontal bars, one row per series entry,
// scaled to width characters.
func BarChart(w io.Writer, title string, series []string, groups []BarGroup, width int) error {
	if width < 10 {
		return errors.New("report: chart width too small")
	}
	if len(groups) == 0 {
		return errors.New("report: no groups")
	}
	var maxVal float64
	for _, g := range groups {
		if len(g.Values) != len(series) {
			return fmt.Errorf("report: group %q has %d values, want %d", g.Label, len(g.Values), len(series))
		}
		for _, v := range g.Values {
			if v < 0 {
				return fmt.Errorf("report: negative bar value %v in %q", v, g.Label)
			}
			if v > maxVal {
				maxVal = v
			}
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	if maxVal == 0 {
		maxVal = 1
	}
	labelW := 0
	for _, g := range groups {
		if len(g.Label) > labelW {
			labelW = len(g.Label)
		}
	}
	seriesW := 0
	for _, s := range series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	for _, g := range groups {
		for i, v := range g.Values {
			label := ""
			if i == 0 {
				label = g.Label
			}
			n := int(v / maxVal * float64(width))
			fmt.Fprintf(w, "%-*s %-*s |%s %.4g\n", labelW, label, seriesW, series[i], strings.Repeat("#", n), v)
		}
	}
	return nil
}

// Table renders an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	if len(headers) == 0 {
		return errors.New("report: no headers")
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		if len(r) != len(headers) {
			return fmt.Errorf("report: row has %d cells, want %d", len(r), len(headers))
		}
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range rows {
		line(r)
	}
	return nil
}

// CSV writes simple comma-separated values (no quoting; cells must not
// contain commas — experiment outputs never do).
func CSV(w io.Writer, headers []string, rows [][]string) error {
	for _, r := range rows {
		if len(r) != len(headers) {
			return fmt.Errorf("report: csv row has %d cells, want %d", len(r), len(headers))
		}
	}
	for _, cell := range headers {
		if strings.Contains(cell, ",") {
			return fmt.Errorf("report: csv cell %q contains a comma", cell)
		}
	}
	fmt.Fprintln(w, strings.Join(headers, ","))
	for _, r := range rows {
		for _, cell := range r {
			if strings.Contains(cell, ",") {
				return fmt.Errorf("report: csv cell %q contains a comma", cell)
			}
		}
		fmt.Fprintln(w, strings.Join(r, ","))
	}
	return nil
}

// SortedKeys returns a map's keys sorted (shared helper for deterministic
// report ordering).
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
