package report

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	groups := []BarGroup{
		{Label: "p1", Values: []float64{10, 5}},
		{Label: "p2", Values: []float64{20, 0}},
	}
	if err := BarChart(&sb, "losses", []string{"pre", "post"}, groups, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "losses") || !strings.Contains(out, "p1") || !strings.Contains(out, "post") {
		t.Fatalf("chart output: %s", out)
	}
	// The largest value must render the full width.
	if !strings.Contains(out, strings.Repeat("#", 40)) {
		t.Fatalf("max bar not full width:\n%s", out)
	}
}

func TestBarChartErrors(t *testing.T) {
	var sb strings.Builder
	if err := BarChart(&sb, "t", []string{"a"}, nil, 40); err == nil {
		t.Fatal("no groups accepted")
	}
	if err := BarChart(&sb, "t", []string{"a"}, []BarGroup{{Label: "x", Values: []float64{1, 2}}}, 40); err == nil {
		t.Fatal("mismatched series accepted")
	}
	if err := BarChart(&sb, "t", []string{"a"}, []BarGroup{{Label: "x", Values: []float64{-1}}}, 40); err == nil {
		t.Fatal("negative value accepted")
	}
	if err := BarChart(&sb, "t", []string{"a"}, []BarGroup{{Label: "x", Values: []float64{1}}}, 2); err == nil {
		t.Fatal("tiny width accepted")
	}
}

func TestBarChartAllZero(t *testing.T) {
	var sb strings.Builder
	if err := BarChart(&sb, "z", []string{"a"}, []BarGroup{{Label: "x", Values: []float64{0}}}, 20); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	err := Table(&sb, []string{"proc", "pre", "post"}, [][]string{
		{"p1", "70", "83"},
		{"p16", "96", "82"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("no separator:\n%s", out)
	}
}

func TestTableErrors(t *testing.T) {
	var sb strings.Builder
	if err := Table(&sb, nil, nil); err == nil {
		t.Fatal("no headers accepted")
	}
	if err := Table(&sb, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, []string{"a", "b"}, [][]string{{"1", "2"}}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestCSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("ragged row accepted")
	}
	if err := CSV(&sb, []string{"a,b"}, nil); err == nil {
		t.Fatal("comma cell accepted")
	}
	if err := CSV(&sb, []string{"a"}, [][]string{{"1,2"}}); err == nil {
		t.Fatal("comma data cell accepted")
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("sorted keys = %v", got)
	}
}
