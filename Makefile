# Developer entry points; CI (.github/workflows) runs the same commands.

GO ?= go

# bench-compare inputs: previous and current bench outputs (see PERFORMANCE.md).
OLD ?= previous-results.txt
NEW ?= bench-results.txt

# The regression gate list (PERFORMANCE.md "The regression gate"): the
# headline sweep at the default 10%, the hot kernels at a looser 25% —
# micro-benchmarks in the microsecond range are noisier run-to-run than a
# 9-second sweep, and a real kernel regression shows up well past 25%.
# .github/workflows/bench.yml applies the same list nightly.
BENCH_GATES = \
	-gate 'BenchmarkSweep32' \
	-gate 'BenchmarkSparseMatVec/=25' \
	-gate 'BenchmarkSimplex=25' \
	-gate 'BenchmarkStationaryDenseVsSparse/=25' \
	-gate 'BenchmarkSolveJointCapped=25' \
	-gate 'BenchmarkRobustSweep=25' \
	-gate 'BenchmarkFleetThroughput/=25' \
	-gate 'BenchmarkAnalyticSolve=25' \
	-gate 'BenchmarkRobustMatrix=25'

.PHONY: build test race bench bench-compare profile lint fmt scenario-smoke serve-smoke placement-smoke robust-smoke fuzz-smoke fleet-smoke fleet-bench cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The backend gates (internal/solver) run real methodology sweeps; under
# the race detector they need more than the 10m default per-package budget
# on small machines.
race:
	$(GO) test -race -timeout 25m ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# Compare two bench runs and fail on gated regressions (BENCH_GATES above) —
# the same list the nightly workflow applies. Produce the inputs with e.g.
#   make bench > bench-results.txt
#   make bench-compare OLD=previous-results.txt NEW=bench-results.txt
bench-compare:
	$(GO) run ./cmd/benchdiff $(BENCH_GATES) -max-regress 10 $(OLD) $(NEW)

# Profile one benchmark: CPU + heap pprof and the top-10 flat listing for
# each, e.g.
#   make profile BENCH=BenchmarkSolveJointCapped PKG=./internal/ctmdp
# go test's profiling flags need a single package, so PKG must name the one
# holding BENCH (default: the root package, home of the end-to-end sweeps).
# Artifacts land in ./profiles/. PERFORMANCE.md "Profiling methodology"
# walks through reading the output.
BENCH ?= BenchmarkSweep32
PKG ?= .
profile:
	@mkdir -p profiles
	$(GO) test -run '^$$' -bench '^$(BENCH)$$' -benchmem \
		-cpuprofile $(CURDIR)/profiles/$(BENCH).cpu.pprof \
		-memprofile $(CURDIR)/profiles/$(BENCH).mem.pprof \
		-o $(CURDIR)/profiles/$(BENCH).test $(PKG)
	@echo "== cpu: top 10 flat =="
	$(GO) tool pprof -top -nodecount=10 profiles/$(BENCH).test profiles/$(BENCH).cpu.pprof
	@echo "== heap (alloc_space): top 10 flat =="
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space \
		profiles/$(BENCH).test profiles/$(BENCH).mem.pprof

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

# Tiny end-to-end pass through the scenario engine, once per solver
# backend: one preset + one generated topology, 1 seed, short horizon.
# Catches generator, traffic-wiring or backend-dispatch regressions in
# seconds; CI runs it on every push.
scenario-smoke:
	@for m in exact analytic hybrid robust; do \
		echo "== scenario-smoke ($$m) =="; \
		$(GO) run ./cmd/experiments scenario-sweep -method $$m \
			-scenarios twobus,chain6-bursty -budget 48 -iters 2 -seeds 1 -horizon 600 -parallel 2 \
			|| exit 1; \
	done

# Tiny end-to-end pass through the buffer-placement DP, once per solver
# backend: run a placement on one registry scenario with quick evaluation
# knobs and assert the frontier is non-empty. Catches enumeration, pricing,
# contraction or refinement regressions in seconds; CI runs it on every
# push next to scenario-smoke and serve-smoke.
placement-smoke:
	@for m in exact analytic hybrid; do \
		echo "== placement-smoke ($$m) =="; \
		out=$$($(GO) run ./cmd/socbuf -scenario chain6 -place -method $$m \
			-refine-top 1 -iters 2 -horizon 400 -parallel 2 -json) || exit 1; \
		echo "$$out" | grep -q '"frontier": \[' || { \
			echo "placement-smoke ($$m): empty frontier"; echo "$$out"; exit 1; }; \
		echo "$$out" | grep -q '"chosen":' || { \
			echo "placement-smoke ($$m): no chosen placement"; echo "$$out"; exit 1; }; \
	done

# Tiny end-to-end pass through the socbufd service: build, start, curl one
# /v1/solve per solver backend (plus the unknown-method 400 path) and
# /v1/stats with its per-backend counters, SIGTERM, assert a clean graceful
# shutdown. CI runs it on every push next to scenario-smoke.
serve-smoke:
	GO="$(GO)" sh scripts/serve-smoke.sh

# End-to-end fleet pass (DESIGN.md §10): router + two shards sharing the
# remote cache tier, cross-shard remote-cache hit, drain-aware failover,
# clean shutdown. CI runs it on every push next to serve-smoke.
fleet-smoke:
	GO="$(GO)" sh scripts/fleet-smoke.sh

# Measure routed fleet throughput with cmd/loadgen (1/2/4 shards plus a
# no-router baseline) — the numbers behind PERFORMANCE.md's fleet table.
# Tune with FLEET_BENCH_DURATION / FLEET_BENCH_CONCURRENCY / FLEET_BENCH_MIX.
fleet-bench:
	GO="$(GO)" sh scripts/fleet-bench.sh

# Tiny end-to-end pass through the robust backend: a quick robust-sweep over
# two registry scenarios, asserting the chance-constraint yield columns made
# it to the JSON output. Catches sampler, screening or selection regressions
# in seconds; CI runs it on every push next to scenario-smoke.
robust-smoke:
	@echo "== robust-smoke =="
	@out=$$($(GO) run ./cmd/experiments robust-sweep \
		-scenarios twobus,chain6 -quick -samples 16 -parallel 2 -json) || exit 1; \
	echo "$$out" | grep -q '"yield":' || { \
		echo "robust-smoke: no yield in output"; echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q '"yieldLow":' || { \
		echo "robust-smoke: no Wilson bound in output"; echo "$$out"; exit 1; }

# Brief run of every native fuzz target (strict-parser robustness — the
# uncertainty-spec decoder and the two CLI list parsers — plus the blocking
# recurrence's oracle gate against the big.Float MM1K form). Ten seconds per
# target is enough to shake out panics and round-trip violations on new
# code; the targets also run as plain tests (corpus seeds) under make test.
fuzz-smoke:
	@for t in FuzzParseSpec=./internal/uncertain \
		FuzzParseMethods=./internal/experiments \
		FuzzParseCatalogue=./internal/placement \
		FuzzBlockingRecurrence=./internal/queueing; do \
		name=$${t%=*}; pkg=$${t#*=}; \
		echo "== fuzz-smoke ($$name) =="; \
		$(GO) test -run '^$$' -fuzz "^$$name$$" -fuzztime 10s $$pkg || exit 1; \
	done

# Per-package coverage floors on the solver seam and the uncertainty model.
# Starting coverage at the floors' introduction (2026-08): internal/solver
# 80.3%, internal/uncertain 92.1% — the floors sit a few points below so
# honest refactors don't trip them, but a test-free feature dump does.
cover:
	@set -e; \
	for spec in internal/solver:75 internal/uncertain:85; do \
		pkg=$${spec%:*}; floor=$${spec#*:}; \
		line=$$($(GO) test -cover ./$$pkg/ | tail -1); \
		echo "$$line"; \
		pct=$$(echo "$$line" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		[ -n "$$pct" ] || { echo "cover: no coverage line for $$pkg"; exit 1; }; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit (p + 0 >= f + 0) ? 0 : 1 }' || { \
			echo "cover: $$pkg coverage $$pct% below floor $$floor%"; exit 1; }; \
	done
