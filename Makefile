# Developer entry points; CI (.github/workflows) runs the same commands.

GO ?= go

# bench-compare inputs: previous and current bench outputs (see PERFORMANCE.md).
OLD ?= previous-results.txt
NEW ?= bench-results.txt

.PHONY: build test race bench bench-compare lint fmt scenario-smoke serve-smoke placement-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The backend gates (internal/solver) run real methodology sweeps; under
# the race detector they need more than the 10m default per-package budget
# on small machines.
race:
	$(GO) test -race -timeout 25m ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# Compare two bench runs and fail on >10% BenchmarkSweep32 regression — the
# same gate the nightly workflow applies. Produce the inputs with e.g.
#   make bench > bench-results.txt
#   make bench-compare OLD=previous-results.txt NEW=bench-results.txt
bench-compare:
	$(GO) run ./cmd/benchdiff -gate 'BenchmarkSweep32' -max-regress 10 $(OLD) $(NEW)

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

# Tiny end-to-end pass through the scenario engine, once per solver
# backend: one preset + one generated topology, 1 seed, short horizon.
# Catches generator, traffic-wiring or backend-dispatch regressions in
# seconds; CI runs it on every push.
scenario-smoke:
	@for m in exact analytic hybrid; do \
		echo "== scenario-smoke ($$m) =="; \
		$(GO) run ./cmd/experiments scenario-sweep -method $$m \
			-scenarios twobus,chain6-bursty -budget 48 -iters 2 -seeds 1 -horizon 600 -parallel 2 \
			|| exit 1; \
	done

# Tiny end-to-end pass through the buffer-placement DP, once per solver
# backend: run a placement on one registry scenario with quick evaluation
# knobs and assert the frontier is non-empty. Catches enumeration, pricing,
# contraction or refinement regressions in seconds; CI runs it on every
# push next to scenario-smoke and serve-smoke.
placement-smoke:
	@for m in exact analytic hybrid; do \
		echo "== placement-smoke ($$m) =="; \
		out=$$($(GO) run ./cmd/socbuf -scenario chain6 -place -method $$m \
			-refine-top 1 -iters 2 -horizon 400 -parallel 2 -json) || exit 1; \
		echo "$$out" | grep -q '"frontier": \[' || { \
			echo "placement-smoke ($$m): empty frontier"; echo "$$out"; exit 1; }; \
		echo "$$out" | grep -q '"chosen":' || { \
			echo "placement-smoke ($$m): no chosen placement"; echo "$$out"; exit 1; }; \
	done

# Tiny end-to-end pass through the socbufd service: build, start, curl one
# /v1/solve per solver backend (plus the unknown-method 400 path) and
# /v1/stats with its per-backend counters, SIGTERM, assert a clean graceful
# shutdown. CI runs it on every push next to scenario-smoke.
serve-smoke:
	GO="$(GO)" sh scripts/serve-smoke.sh
