# Developer entry points; CI (.github/workflows) runs the same commands.

GO ?= go

.PHONY: build test race bench lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .
